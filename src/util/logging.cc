#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

namespace rt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// Writes one fully-formatted line to stderr with a single write(2)
/// per chunk under a process-wide mutex. stdio (fputs) buffers lines
/// in pieces, so the HTTP worker pool, the batch-scheduler thread, and
/// the compute pool logging concurrently could interleave fragments
/// mid-line; serializing the raw fd writes keeps every line atomic.
/// The fd is written directly (not via FILE*) so a concurrent legacy
/// fprintf(stderr, ...) can tear at worst against a whole line, never
/// inside one.
void EmitLogLine(const std::string& line) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  size_t offset = 0;
  while (offset < line.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, line.data() + offset, line.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr is gone; nothing useful left to do
    }
    if (n == 0) return;
    offset += static_cast<size_t>(n);
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    EmitLogLine(stream_.str());
  }
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "[CHECK FAILED " << Basename(file) << ":" << line << "] "
          << cond << " ";
}

CheckFailure::~CheckFailure() {
  stream_ << "\n";
  EmitLogLine(stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace rt
