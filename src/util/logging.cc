#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "[CHECK FAILED " << Basename(file) << ":" << line << "] "
          << cond << " ";
}

CheckFailure::~CheckFailure() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace rt
