#include "util/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/flight_recorder.h"

namespace rt {
namespace obs {

// ---------------------------------------------------------------------------
// SloEngine

const int SloEngine::kWindowSeconds[SloEngine::kNumWindows] = {60, 600,
                                                               3600};
const char* const SloEngine::kWindowNames[SloEngine::kNumWindows] = {
    "1m", "10m", "1h"};

const char* SloClassName(int traffic_class) {
  return traffic_class == 1 ? "batch" : "interactive";
}

double SloBurnRate(long long total, long long bad, double allowed_ratio) {
  if (total <= 0 || allowed_ratio <= 0.0) return 0.0;
  const double bad_ratio =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_ratio / allowed_ratio;
}

SloEngine& SloEngine::Instance() {
  static SloEngine engine;
  return engine;
}

SloEngine::SloEngine() {
  // Defaults: a tight interactive objective and a loose batch one, both
  // overridable via Configure (CLI --slo-* flags).
  classes_[0].objective.traffic_class = 0;
  classes_[1].objective.traffic_class = 1;
  classes_[1].objective.latency_target_ms = 30000.0;
  for (ClassState& state : classes_) {
    state.ring.resize(kWindowSeconds[kNumWindows - 1]);
  }
}

void SloEngine::Configure(const std::vector<SloObjective>& objectives) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const SloObjective& objective : objectives) {
    const int cls = objective.traffic_class;
    if (cls < 0 || cls >= kNumClasses) continue;
    classes_[cls].objective = objective;
    classes_[cls].objective.traffic_class = cls;
  }
  ResetLocked();
}

void SloEngine::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ResetLocked();
}

void SloEngine::ResetLocked() {
  for (ClassState& state : classes_) {
    for (SecondBucket& bucket : state.ring) bucket = SecondBucket{};
    state.latency.Reset();
  }
}

SloObjective SloEngine::objective(int traffic_class) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (traffic_class < 0 || traffic_class >= kNumClasses) traffic_class = 0;
  return classes_[traffic_class].objective;
}

void SloEngine::RecordRequest(int traffic_class, long long latency_ns,
                              bool error) {
  RecordRequestAt(traffic_class,
                  static_cast<long long>(UptimeSeconds()), latency_ns,
                  error);
}

void SloEngine::RecordRequestAt(int traffic_class, long long epoch_s,
                                long long latency_ns, bool error) {
  if (traffic_class < 0 || traffic_class >= kNumClasses) return;
  if (epoch_s < 0) epoch_s = 0;
  if (latency_ns < 0) latency_ns = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  ClassState& state = classes_[traffic_class];
  SecondBucket& bucket =
      state.ring[static_cast<size_t>(epoch_s) % state.ring.size()];
  if (bucket.epoch != epoch_s) {
    // The ring lapped this second (or it is fresh); the old counts fell
    // out of even the longest window.
    bucket = SecondBucket{};
    bucket.epoch = epoch_s;
  }
  bucket.total += 1;
  const double latency_ms = static_cast<double>(latency_ns) * 1e-6;
  if (latency_ms > state.objective.latency_target_ms) bucket.slow += 1;
  if (error) bucket.errors += 1;
  state.latency.Record(latency_ns);
}

SloEngine::ClassStatus SloEngine::Evaluate(int traffic_class) const {
  return EvaluateAt(traffic_class,
                    static_cast<long long>(UptimeSeconds()));
}

SloEngine::ClassStatus SloEngine::EvaluateAt(int traffic_class,
                                             long long now_epoch_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EvaluateLocked(traffic_class, now_epoch_s);
}

SloEngine::ClassStatus SloEngine::EvaluateLocked(
    int traffic_class, long long now_epoch_s) const {
  ClassStatus status;
  if (traffic_class < 0 || traffic_class >= kNumClasses) return status;
  const ClassState& state = classes_[traffic_class];
  // One pass over the ring; each live bucket lands in every window wide
  // enough to contain it ((now - epoch) < window, i.e. the trailing
  // `window` seconds including the current one).
  for (const SecondBucket& bucket : state.ring) {
    if (bucket.epoch < 0 || bucket.epoch > now_epoch_s) continue;
    const long long age = now_epoch_s - bucket.epoch;
    for (int w = 0; w < kNumWindows; ++w) {
      if (age >= kWindowSeconds[w]) continue;
      status.windows[w].total += bucket.total;
      status.windows[w].slow += bucket.slow;
      status.windows[w].errors += bucket.errors;
    }
  }
  const SloObjective& objective = state.objective;
  const double latency_allowed = 1.0 - objective.latency_quantile;
  for (int w = 0; w < kNumWindows; ++w) {
    status.latency_burn[w] = SloBurnRate(
        status.windows[w].total, status.windows[w].slow, latency_allowed);
    status.error_burn[w] =
        SloBurnRate(status.windows[w].total, status.windows[w].errors,
                    objective.max_error_ratio);
  }
  status.fast_burn =
      status.windows[0].total >= objective.min_samples &&
      (status.latency_burn[0] >= objective.fast_burn_threshold ||
       status.error_burn[0] >= objective.fast_burn_threshold);
  status.p99_estimate_ms =
      state.latency.QuantileUpperBoundSeconds(0.99) * 1e3;
  return status;
}

bool SloEngine::AnyFastBurn() const {
  const long long now = static_cast<long long>(UptimeSeconds());
  std::lock_guard<std::mutex> lock(mutex_);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (EvaluateLocked(cls, now).fast_burn) return true;
  }
  return false;
}

double SloEngine::P99EstimateMs(int traffic_class) const {
  if (traffic_class < 0 || traffic_class >= kNumClasses) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  return classes_[traffic_class].latency.QuantileUpperBoundSeconds(0.99) *
         1e3;
}

namespace {

/// Writes one class's status under "slo_<class>_..." flat keys.
void FillClassMetrics(const std::string& prefix,
                      const SloObjective& objective,
                      const SloEngine::ClassStatus& status, Json* out) {
  out->Set(prefix + "latency_target_ms", objective.latency_target_ms);
  out->Set(prefix + "latency_quantile", objective.latency_quantile);
  out->Set(prefix + "max_error_ratio", objective.max_error_ratio);
  out->Set(prefix + "fast_burn_threshold", objective.fast_burn_threshold);
  for (int w = 0; w < SloEngine::kNumWindows; ++w) {
    const std::string window =
        prefix + SloEngine::kWindowNames[w] + std::string("_");
    out->Set(window + "total",
             static_cast<double>(status.windows[w].total));
    out->Set(window + "slow",
             static_cast<double>(status.windows[w].slow));
    out->Set(window + "errors",
             static_cast<double>(status.windows[w].errors));
    out->Set(window + "latency_burn", status.latency_burn[w]);
    out->Set(window + "error_burn", status.error_burn[w]);
  }
  out->Set(prefix + "fast_burn", status.fast_burn ? 1.0 : 0.0);
  out->Set(prefix + "p99_estimate_ms", status.p99_estimate_ms);
}

}  // namespace

void SloEngine::FillMetrics(Json* object) const {
  const long long now = static_cast<long long>(UptimeSeconds());
  bool any_fast_burn = false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    const ClassStatus status = EvaluateLocked(cls, now);
    any_fast_burn = any_fast_burn || status.fast_burn;
    FillClassMetrics(
        std::string("slo_") + SloClassName(cls) + "_",
        classes_[cls].objective, status, object);
  }
  object->Set("slo_fast_burn", any_fast_burn ? 1.0 : 0.0);
}

// ---------------------------------------------------------------------------
// Fleet aggregation

namespace {

double NumberOr(const Json& object, const std::string& key,
                double fallback) {
  const Json& value = object.Get(key);
  return value.is_number() ? value.AsNumber() : fallback;
}

}  // namespace

void AggregateSloMetrics(const std::vector<Json>& replica_metrics,
                         Json* out) {
  bool fleet_fast_burn = false;
  int replicas_reporting = 0;
  for (int cls = 0; cls < SloEngine::kNumClasses; ++cls) {
    const std::string prefix =
        std::string("slo_") + SloClassName(cls) + "_";
    // Objectives are deployment-uniform (same CLI flags fleet-wide);
    // echo the first replica that reports them.
    double target_ms = -1.0, quantile = 0.0, error_ratio = 0.0,
           threshold = 0.0;
    long long totals[SloEngine::kNumWindows] = {};
    long long slows[SloEngine::kNumWindows] = {};
    long long errors[SloEngine::kNumWindows] = {};
    double p99_max = 0.0;
    for (const Json& metrics : replica_metrics) {
      if (!metrics.is_object()) continue;
      if (!metrics.Get(prefix + "latency_target_ms").is_number()) {
        continue;
      }
      if (cls == 0) ++replicas_reporting;
      if (target_ms < 0.0) {
        target_ms = NumberOr(metrics, prefix + "latency_target_ms", 0.0);
        quantile = NumberOr(metrics, prefix + "latency_quantile", 0.99);
        error_ratio = NumberOr(metrics, prefix + "max_error_ratio", 0.01);
        threshold =
            NumberOr(metrics, prefix + "fast_burn_threshold", 14.0);
      }
      for (int w = 0; w < SloEngine::kNumWindows; ++w) {
        const std::string window =
            prefix + SloEngine::kWindowNames[w] + std::string("_");
        totals[w] += static_cast<long long>(
            NumberOr(metrics, window + "total", 0.0) + 0.5);
        slows[w] += static_cast<long long>(
            NumberOr(metrics, window + "slow", 0.0) + 0.5);
        errors[w] += static_cast<long long>(
            NumberOr(metrics, window + "errors", 0.0) + 0.5);
      }
      p99_max = std::max(
          p99_max, NumberOr(metrics, prefix + "p99_estimate_ms", 0.0));
    }
    if (target_ms < 0.0) continue;  // no replica reported this class
    const std::string fleet_prefix = "fleet_" + prefix;
    out->Set(fleet_prefix + "latency_target_ms", target_ms);
    out->Set(fleet_prefix + "latency_quantile", quantile);
    out->Set(fleet_prefix + "max_error_ratio", error_ratio);
    bool class_fast_burn = false;
    for (int w = 0; w < SloEngine::kNumWindows; ++w) {
      const std::string window =
          fleet_prefix + SloEngine::kWindowNames[w] + std::string("_");
      const double latency_burn =
          SloBurnRate(totals[w], slows[w], 1.0 - quantile);
      const double error_burn =
          SloBurnRate(totals[w], errors[w], error_ratio);
      out->Set(window + "total", static_cast<double>(totals[w]));
      out->Set(window + "slow", static_cast<double>(slows[w]));
      out->Set(window + "errors", static_cast<double>(errors[w]));
      out->Set(window + "latency_burn", latency_burn);
      out->Set(window + "error_burn", error_burn);
      if (w == 0 && totals[0] >= 12 &&
          (latency_burn >= threshold || error_burn >= threshold)) {
        class_fast_burn = true;
      }
    }
    out->Set(fleet_prefix + "fast_burn", class_fast_burn ? 1.0 : 0.0);
    out->Set(fleet_prefix + "p99_estimate_ms", p99_max);
    fleet_fast_burn = fleet_fast_burn || class_fast_burn;
  }
  out->Set("fleet_slo_replicas_reporting",
           static_cast<double>(replicas_reporting));
  out->Set("fleet_slo_fast_burn", fleet_fast_burn ? 1.0 : 0.0);
}

bool FleetFastBurn(const Json& aggregated) {
  return NumberOr(aggregated, "fleet_slo_fast_burn", 0.0) >= 1.0;
}

void MergeHistogramFamilies(Json* dst, const Json& src,
                            const std::string& prefix) {
  if (!dst->is_object() || !src.is_object()) return;
  constexpr const char kLe[] = "latency_bucket_le";
  constexpr const char kCount[] = "latency_bucket_count";
  for (const auto& [key, value] : src.AsObject()) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    const size_t le_len = std::strlen(kLe);
    if (key.size() < le_len ||
        key.compare(key.size() - le_len, le_len, kLe) != 0 ||
        !value.is_array()) {
      continue;
    }
    const std::string family = key.substr(0, key.size() - le_len);
    const Json& src_counts = src.Get(family + kCount);
    if (!src_counts.is_array()) continue;
    const Json& dst_counts = dst->Get(family + kCount);
    if (!dst_counts.is_array()) {
      // Family unknown on this side: copy it whole.
      dst->Set(family + kLe, value);
      dst->Set(family + kCount, src_counts);
      dst->Set(family + "seconds_total",
               NumberOr(src, family + "seconds_total", 0.0));
      dst->Set(family + "seconds_max",
               NumberOr(src, family + "seconds_max", 0.0));
      dst->Set(family + "seconds_mean",
               NumberOr(src, family + "seconds_mean", 0.0));
      continue;
    }
    Json merged{Json::Array{}};
    const auto& a = dst_counts.AsArray();
    const auto& b = src_counts.AsArray();
    const size_t n = std::min(a.size(), b.size());
    double observations = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double sum = a[i].AsNumber() + b[i].AsNumber();
      observations += sum;
      merged.Append(sum);
    }
    const double total = NumberOr(*dst, family + "seconds_total", 0.0) +
                         NumberOr(src, family + "seconds_total", 0.0);
    dst->Set(family + kCount, std::move(merged));
    dst->Set(family + "seconds_total", total);
    dst->Set(family + "seconds_max",
             std::max(NumberOr(*dst, family + "seconds_max", 0.0),
                      NumberOr(src, family + "seconds_max", 0.0)));
    dst->Set(family + "seconds_mean",
             observations > 0.0 ? total / observations : 0.0);
  }
}

// ---------------------------------------------------------------------------
// MetricsHistory

MetricsHistory::MetricsHistory() = default;

MetricsHistory::~MetricsHistory() { Stop(); }

void MetricsHistory::Configure(const Options& options,
                               std::function<Json()> sampler) {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  if (options_.capacity < 2) options_.capacity = 2;
  if (options_.interval_ms < 1) options_.interval_ms = 1;
  sampler_ = std::move(sampler);
  keys_.clear();
  times_.clear();
  values_.clear();
  head_ = 0;
  count_ = 0;
}

void MetricsHistory::Start() {
  if (running_.load() || !sampler_) return;
  running_.store(true);
  thread_ = std::thread([this] { SamplerLoop(); });
}

void MetricsHistory::Stop() {
  if (running_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
    }
    wake_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHistory::SamplerLoop() {
  // The first sample lands one interval after Start(), not at t=0: the
  // sampler callback may fan out over the network (the router's embeds
  // per-replica metrics fetches), and an immediate sample races the
  // owner's own startup and its very first client requests.
  while (running_.load()) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.interval_ms),
                        [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    SampleNow();
    // Heartbeat the flight recorder on the same cadence: a SIGKILLed
    // process leaves its last pre-kill snapshot behind for the
    // supervisor to collect (SIGKILL never runs a handler).
    FlightRecorder::Instance().WriteHeartbeat();
  }
}

void MetricsHistory::Flatten(const Json& value, std::string* key_buf,
                             std::vector<double>* row, size_t* cursor,
                             bool first) {
  if (!value.is_object()) return;
  const size_t base_len = key_buf->size();
  for (const auto& [key, field] : value.AsObject()) {
    key_buf->resize(base_len);
    key_buf->append(key);
    if (field.is_number() || field.is_bool()) {
      const double number =
          field.is_number() ? field.AsNumber() : (field.AsBool() ? 1 : 0);
      if (first) {
        keys_.push_back(*key_buf);
        row->push_back(number);
      } else if (*cursor < keys_.size() && keys_[*cursor] == *key_buf) {
        // Fast path: the snapshot schema is stable (sorted-map dump),
        // so keys arrive in frozen order and no allocation happens.
        (*row)[*cursor] = number;
        ++*cursor;
      } else {
        // Schema drift (a key appeared/disappeared after freeze, e.g.
        // a new per-model breaker): realign by search; unknown keys
        // are dropped, missing ones keep NaN.
        for (size_t i = 0; i < keys_.size(); ++i) {
          if (keys_[i] == *key_buf) {
            (*row)[i] = number;
            *cursor = i + 1;
            break;
          }
        }
      }
    } else if (field.is_object()) {
      key_buf->push_back('_');
      Flatten(field, key_buf, row, cursor, first);
    }
    // Strings and arrays (histogram bucket vectors) are not series
    // material; the bucket families already surface as seconds_total /
    // seconds_mean summary numbers.
  }
  key_buf->resize(base_len);
}

void MetricsHistory::SampleNow() {
  std::function<Json()> sampler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sampler = sampler_;
  }
  if (!sampler) return;
  const Json snapshot = sampler();  // outside the lock: may be slow
  const double now_s = UptimeSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  const bool first = keys_.empty();
  static thread_local std::string key_buf;
  key_buf.clear();
  if (first) {
    std::vector<double> row;
    size_t cursor = 0;
    Flatten(snapshot, &key_buf, &row, &cursor, /*first=*/true);
    if (keys_.empty()) return;
    times_.assign(options_.capacity, 0.0);
    values_.assign(static_cast<size_t>(options_.capacity) * keys_.size(),
                   std::nan(""));
    std::copy(row.begin(), row.end(), values_.begin());
    times_[0] = now_s;
    head_ = 1 % options_.capacity;
    count_ = 1;
    return;
  }
  const size_t stride = keys_.size();
  double* row = &values_[static_cast<size_t>(head_) * stride];
  size_t cursor = 0;
  // Steady state: flatten into a reusable scratch row (capacity sticks
  // across samples, so no heap after the first lap) and copy into the
  // ring slot.
  static thread_local std::vector<double> scratch;
  scratch.assign(stride, std::nan(""));
  Flatten(snapshot, &key_buf, &scratch, &cursor, /*first=*/false);
  std::copy(scratch.begin(), scratch.end(), row);
  times_[head_] = now_s;
  head_ = (head_ + 1) % options_.capacity;
  if (count_ < options_.capacity) ++count_;
}

int MetricsHistory::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

int MetricsHistory::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.capacity;
}

int MetricsHistory::interval_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.interval_ms;
}

Json MetricsHistory::Rollup(double window_s,
                            const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out{Json::Object{}};
  out.Set("interval_ms", options_.interval_ms);
  out.Set("capacity", options_.capacity);
  const double now_s = UptimeSeconds();
  const double cutoff = window_s > 0.0 ? now_s - window_s : -1.0;
  out.Set("window_s", window_s > 0.0 ? window_s : 0.0);
  // Collect in-ring indices oldest-first within the window.
  std::vector<int> picked;
  picked.reserve(count_);
  const size_t stride = keys_.size();
  for (int i = 0; i < count_; ++i) {
    const int idx =
        (head_ - count_ + i + 2 * options_.capacity) % options_.capacity;
    if (times_[idx] < cutoff) continue;
    picked.push_back(idx);
  }
  out.Set("samples", static_cast<double>(picked.size()));
  if (!picked.empty()) {
    out.Set("span_s",
            times_[picked.back()] - times_[picked.front()]);
  } else {
    out.Set("span_s", 0.0);
  }
  Json series{Json::Object{}};
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (!key.empty() && keys_[k] != key) continue;
    double first = std::nan(""), last = std::nan("");
    double min = std::nan(""), max = std::nan("");
    for (const int idx : picked) {
      const double v = values_[static_cast<size_t>(idx) * stride + k];
      if (std::isnan(v)) continue;
      if (std::isnan(first)) first = v;
      last = v;
      if (std::isnan(min) || v < min) min = v;
      if (std::isnan(max) || v > max) max = v;
    }
    if (std::isnan(first)) continue;
    Json entry{Json::Object{}};
    entry.Set("first", first);
    entry.Set("last", last);
    entry.Set("min", min);
    entry.Set("max", max);
    entry.Set("delta", last - first);
    series.Set(keys_[k], std::move(entry));
    if (!key.empty()) {
      Json points{Json::Array{}};
      for (const int idx : picked) {
        const double v = values_[static_cast<size_t>(idx) * stride + k];
        if (std::isnan(v)) continue;
        Json point{Json::Array{}};
        point.Append(times_[idx]);
        point.Append(v);
        points.Append(std::move(point));
      }
      out.Set("points", std::move(points));
    }
  }
  out.Set("series", std::move(series));
  return out;
}

Json MetricsHistory::RollupForQuery(const std::string& query) const {
  double window_s = 0.0;  // 0 = whole ring
  std::string key;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string param = query.substr(pos, end - pos);
    const size_t eq = param.find('=');
    if (eq != std::string::npos) {
      const std::string name = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      if (name == "window") {
        window_s = std::atof(value.c_str());
      } else if (name == "key") {
        key = value;
      }
    }
    pos = end + 1;
  }
  return Rollup(window_s, key);
}

// ---------------------------------------------------------------------------
// SlowTraceArchive

const char* PromoteReasonName(PromoteReason reason) {
  switch (reason) {
    case PromoteReason::kNone:
      return "none";
    case PromoteReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case PromoteReason::kPreempted:
      return "preempted";
    case PromoteReason::kShed:
      return "shed";
    case PromoteReason::kError5xx:
      return "error_5xx";
    case PromoteReason::kSlow:
      return "slow";
  }
  return "unknown";
}

SlowTraceArchive& SlowTraceArchive::Instance() {
  static SlowTraceArchive archive;
  return archive;
}

void SlowTraceArchive::SetCapacity(int capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (static_cast<int>(retained_.size()) > capacity_) {
    retained_.pop_front();
    ++evicted_;
  }
}

void SlowTraceArchive::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retained_.clear();
  promoted_ = 0;
  evicted_ = 0;
}

void SlowTraceArchive::Promote(uint64_t trace_id,
                               const std::string& request_id,
                               PromoteReason reason, int traffic_class,
                               int status, long long duration_ns) {
  Retained entry;
  entry.trace_id = trace_id;
  entry.request_id = request_id;
  entry.reason = reason;
  entry.traffic_class = traffic_class;
  entry.status = status;
  entry.duration_ns = duration_ns < 0 ? 0 : duration_ns;
  entry.captured_uptime_s = UptimeSeconds();
  if (trace_id != 0 && TraceEnabled()) {
    TraceRecorder::Instance().CollectTrace(trace_id, &entry.spans);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++promoted_;
  retained_.push_back(std::move(entry));
  while (static_cast<int>(retained_.size()) > capacity_) {
    retained_.pop_front();
    ++evicted_;
  }
}

int SlowTraceArchive::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(retained_.size());
}

long long SlowTraceArchive::promoted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_;
}

long long SlowTraceArchive::evicted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

Json SlowTraceArchive::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json trace_events{Json::Array{}};
  Json summaries{Json::Array{}};
  for (const Retained& entry : retained_) {
    // Per-stage budget attribution: wall time per span name, so the
    // summary answers "which stage consumed the deadline".
    Json stages_ms{Json::Object{}};
    Json budget_fraction{Json::Object{}};
    for (const SpanCopy& span : entry.spans) {
      Json event{Json::Object{}};
      event.Set("name", span.name);
      event.Set("cat", "rt_slow");
      event.Set("ph", "X");
      event.Set("ts", static_cast<double>(span.ts_ns) * 1e-3);
      event.Set("dur", static_cast<double>(span.dur_ns) * 1e-3);
      event.Set("pid", 1);
      event.Set("tid", static_cast<double>(span.trace_id));
      Json args{Json::Object{}};
      args.Set("trace_id", static_cast<double>(span.trace_id));
      args.Set("promote_reason", PromoteReasonName(entry.reason));
      if (span.arg_name != nullptr) {
        args.Set(span.arg_name, static_cast<double>(span.arg_value));
      }
      event.Set("args", std::move(args));
      trace_events.Append(std::move(event));
      if (std::strcmp(span.name, "request") == 0) continue;  // the whole
      const double prior = stages_ms.Get(span.name).is_number()
                               ? stages_ms.Get(span.name).AsNumber()
                               : 0.0;
      stages_ms.Set(span.name,
                    prior + static_cast<double>(span.dur_ns) * 1e-6);
    }
    if (entry.duration_ns > 0) {
      const double total_ms =
          static_cast<double>(entry.duration_ns) * 1e-6;
      for (const auto& [stage, ms] : stages_ms.AsObject()) {
        budget_fraction.Set(stage, ms.AsNumber() / total_ms);
      }
    }
    Json summary{Json::Object{}};
    summary.Set("trace_id", static_cast<double>(entry.trace_id));
    summary.Set("request_id", entry.request_id);
    summary.Set("reason", PromoteReasonName(entry.reason));
    summary.Set("traffic_class", SloClassName(entry.traffic_class));
    summary.Set("status", entry.status);
    summary.Set("duration_ms",
                static_cast<double>(entry.duration_ns) * 1e-6);
    summary.Set("captured_uptime_s", entry.captured_uptime_s);
    summary.Set("spans", static_cast<double>(entry.spans.size()));
    summary.Set("stages_ms", std::move(stages_ms));
    summary.Set("budget_fraction", std::move(budget_fraction));
    summaries.Append(std::move(summary));
  }
  Json out{Json::Object{}};
  out.Set("traceEvents", std::move(trace_events));
  out.Set("displayTimeUnit", "ms");
  out.Set("slow_traces", std::move(summaries));
  out.Set("archived", static_cast<double>(retained_.size()));
  out.Set("promoted_total", static_cast<double>(promoted_));
  out.Set("evicted_total", static_cast<double>(evicted_));
  return out;
}

void SlowTraceArchive::FillMetrics(Json* object) const {
  std::lock_guard<std::mutex> lock(mutex_);
  object->Set("slow_traces_archived",
              static_cast<double>(retained_.size()));
  object->Set("slow_traces_promoted_total",
              static_cast<double>(promoted_));
  object->Set("slow_traces_evicted_total",
              static_cast<double>(evicted_));
}

// ---------------------------------------------------------------------------
// Request-outcome hook

namespace {

struct RequestAnnotations {
  int traffic_class = -1;  // -1 = not annotated (non-generate exchange)
  PromoteReason reason = PromoteReason::kNone;
};

thread_local RequestAnnotations t_annotations;

}  // namespace

void AnnotateRequestClass(int traffic_class) {
  t_annotations.traffic_class = traffic_class;
}

void AnnotateRequestReason(PromoteReason reason) {
  t_annotations.reason = reason;
}

void OnRequestComplete(uint64_t trace_id, const std::string& request_id,
                       int status, long long duration_ns) {
  const RequestAnnotations annotations = t_annotations;
  t_annotations = RequestAnnotations{};
  const bool annotated = annotations.traffic_class >= 0 &&
                         annotations.traffic_class < SloEngine::kNumClasses;
  const int cls = annotated ? annotations.traffic_class : 0;
  double p99_ms = 0.0;
  if (annotated) {
    // p99 BEFORE recording, so this request cannot promote itself by
    // moving its own threshold.
    p99_ms = SloEngine::Instance().P99EstimateMs(cls);
    SloEngine::Instance().RecordRequest(cls, duration_ns,
                                        status >= 500);
  }
  // Promotion policy, most specific first.
  PromoteReason reason = annotations.reason;
  if (reason == PromoteReason::kNone) {
    if (status == 504) {
      reason = PromoteReason::kDeadlineExceeded;
    } else if (status >= 500) {
      reason = PromoteReason::kError5xx;
    } else if (annotated && p99_ms > 0.0 &&
               static_cast<double>(duration_ns) * 1e-6 > p99_ms) {
      reason = PromoteReason::kSlow;
    }
  }
  if (reason != PromoteReason::kNone) {
    SlowTraceArchive::Instance().Promote(trace_id, request_id, reason,
                                         cls, status, duration_ns);
  }
}

void OnRequestShed(long long waited_ns) {
  // The class is unknown (the body was never parsed); count it against
  // the interactive budget — sheds hurt the tightest objective.
  SloEngine::Instance().RecordRequest(0, waited_ns, /*error=*/true);
}

}  // namespace obs
}  // namespace rt
