#ifndef RATATOUILLE_UTIL_OBS_H_
#define RATATOUILLE_UTIL_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace rt {
namespace obs {

/// Observability primitives shared by every layer of the request path:
///
///   * TraceRecorder — a lock-light ring buffer of spans keyed by a
///     request-scoped trace id, exported as Chrome trace_event JSON
///     (load at chrome://tracing or https://ui.perfetto.dev).
///   * StageHistogram — always-on, lock-free latency histograms with
///     fixed log-spaced buckets, one per pipeline stage.
///   * KernelProfiler — opt-in per-op GEMM call/FLOP/wall-time counters
///     (RT_PROFILE=1 or --profile), aggregated per generated token.
///
/// Cost model: stage histograms are metrics and always record (a few
/// relaxed atomic adds per span). Ring recording and kernel profiling
/// are guarded by a single relaxed atomic load each and cost nothing
/// when disabled — the guarantee the bench tracing-overhead gate
/// enforces.

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

inline TimePoint Now() { return Clock::now(); }

/// Steady-clock instant captured at process start (static init); trace
/// timestamps and /healthz uptime_s are measured from it.
TimePoint ProcessStart();
double UptimeSeconds();

// ---------------------------------------------------------------------------
// Span taxonomy

/// The stages a request passes through. Each has an always-on latency
/// histogram and names the spans in the trace export.
enum class Stage : int {
  kRequest = 0,     ///< whole HTTP exchange, admission to response sent
  kQueueWait,       ///< accept-queue wait before a worker picks the conn up
  kSessionAcquire,  ///< wait for a model session slot
  kPrefill,         ///< prompt encoding before the first sampled token
  kPrefillCached,   ///< prefix-cache restore replacing prefill work
  kBatchStep,       ///< one batched (or sequential) decoder forward step
  kSample,          ///< logits -> token-id selection for one row
  kResponseWrite,   ///< serializing + sending the HTTP response
  kResponseStreamWrite,  ///< one SSE chunk write on a streaming response
  kRouteTry,             ///< one router dispatch attempt against a replica
  kPreempt,              ///< evicting a batch row for a tighter deadline
};
inline constexpr int kStageCount = 11;

/// Stable lowercase span/metric name, e.g. "queue_wait".
const char* StageName(Stage stage);

// ---------------------------------------------------------------------------
// Fast-path guards (single relaxed atomic load; see Cost model above)

namespace internal {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_profile_enabled;
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}
inline bool ProfileEnabled() {
  return internal::g_profile_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Per-stage latency histograms

/// Lock-free latency histogram over fixed log-spaced (1-2-5 decade)
/// bucket upper bounds from 1us to 10s plus an overflow bucket.
/// Record() is a few relaxed atomic RMWs; reads are monotonic
/// snapshots (safe to render while writers are active).
class StageHistogram {
 public:
  static constexpr int kNumBounds = 22;
  /// Finite bucket upper bounds in seconds, ascending.
  static const double kBoundsSeconds[kNumBounds];

  void Record(long long ns);
  void Reset();
  long long count() const;

  /// Upper bound (seconds) of the smallest bucket whose cumulative
  /// count reaches quantile `q` in [0,1] — a conservative estimate of
  /// the q-th latency quantile (the SLO engine's "slower than the class
  /// p99" promotion test). 0 before any observation; the overflow
  /// bucket reports the max observed latency instead of +Inf.
  double QuantileUpperBoundSeconds(double q) const;

  /// Writes prefix+{"seconds_total","seconds_max","seconds_mean",
  /// "latency_bucket_le","latency_bucket_count"} into `object` — the
  /// same key shape the serve request-latency histogram uses, so one
  /// Prometheus renderer handles both.
  void FillMetrics(const std::string& prefix, Json* object) const;

 private:
  std::atomic<long long> buckets_[kNumBounds + 1] = {};
  std::atomic<long long> sum_ns_{0};
  std::atomic<long long> max_ns_{0};
};

/// Process-wide histogram for one stage (always recording).
StageHistogram& HistogramFor(Stage stage);

/// Adds every stage histogram to `object` under "stage_<name>_" key
/// prefixes, plus "stage_tokens_sampled" and "stage_tokens_per_sec"
/// (sampled-token throughput while decode was active).
void FillStageMetrics(Json* object);

/// Clears all stage histograms and the token counters (tests).
void ResetStageMetrics();

/// Counts sampled tokens for the tokens/sec gauge. Called once per
/// sampled token by the decode paths (scheduler + sequential).
void CountSampledTokens(long long n);

/// Per-traffic-class queue-wait histograms (admission to handler
/// start), recorded by the backend once the request body has revealed
/// the class. `traffic_class` is 0 = interactive, 1 = batch (an int so
/// the util layer stays independent of rt::serve::TrafficClass);
/// anything else is ignored. Exported by FillStageMetrics as
/// "stage_queue_wait_interactive_*" / "stage_queue_wait_batch_*".
void RecordClassQueueWait(int traffic_class, long long ns);

// ---------------------------------------------------------------------------
// Trace recorder

/// One span copied out of the ring by TraceRecorder::CollectTrace —
/// the retention store's snapshot unit. `name`/`arg_name` point at
/// process-lifetime literals (StageName), so copies stay cheap.
struct SpanCopy {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  long long ts_ns = 0;
  long long dur_ns = 0;
  const char* arg_name = nullptr;
  long long arg_value = 0;
};

/// Fixed-capacity ring of completed spans. Record() claims a slot with
/// one atomic fetch_add and publishes it seqlock-style (per-slot
/// version counter, all-atomic fields), so concurrent writers never
/// block each other and Export can run while recording continues; a
/// slot caught mid-rewrite is skipped, and once the ring wraps the
/// oldest spans are overwritten (dropped() counts them).
class TraceRecorder {
 public:
  static constexpr int kCapacity = 16384;  // slots (power of two)

  static TraceRecorder& Instance();

  bool enabled() const { return TraceEnabled(); }
  void SetEnabled(bool enabled);

  /// Drops every recorded span and resets the drop counter. Trace ids
  /// keep advancing (they are never reused within a process).
  void Clear();

  /// Allocates a fresh request-scoped trace id (>= 1; 0 = untraced).
  uint64_t NextTraceId();

  /// Records one completed span. `name` must point at storage that
  /// outlives the recorder (string literals / StageName). ts_ns is
  /// relative to ProcessStart(). No-op when disabled.
  void Record(const char* name, uint64_t trace_id, long long ts_ns,
              long long dur_ns, const char* arg_name = nullptr,
              long long arg_value = 0);

  /// Chrome trace_event export: {"traceEvents":[...]} with one "X"
  /// (complete) event per span, tid = trace id so each request gets
  /// its own track, per-track thread_name metadata, and — when the
  /// profiler is enabled — a top-level "kernelProfile" object.
  Json ExportChromeJson() const;

  /// Dump()s ExportChromeJson() to `path`.
  Status ExportToFile(const std::string& path) const;

  /// Copies every published span with `trace_id` still present in the
  /// ring into `out` (appended in ticket order). Returns the number of
  /// spans copied. Seqlock-validated like the export: slots caught
  /// mid-rewrite are skipped and counted in export_torn().
  int CollectTrace(uint64_t trace_id, std::vector<SpanCopy>* out) const;

  /// Async-signal-safe: copies up to `max` of the most recently
  /// published spans (newest first) into caller-provided storage — no
  /// allocation, no locks, atomic loads only. The crash flight
  /// recorder calls this from its signal handler. Returns the count.
  int SnapshotRecent(SpanCopy* out, int max) const;

  /// Spans recorded since Clear() (including since-overwritten ones).
  long long recorded() const;
  /// Spans lost to ring wrap-around since Clear().
  long long dropped() const;
  /// Slots an export/collect pass skipped because a writer was mid-
  /// rewrite (torn seqlock read). Nonzero values mean trace exports
  /// under-report concurrent activity — surfaced at /v1/metrics so the
  /// tail-sampling loss is measurable.
  long long export_torn() const;
  /// Published spans currently resident in the ring (<= kCapacity).
  int occupancy() const;

 private:
  TraceRecorder();

  struct Slot {
    /// 0 = empty; odd = being written; 2*ticket+2 = published.
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<long long> ts_ns{0};
    std::atomic<long long> dur_ns{0};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<long long> arg_value{0};
  };

  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  /// Bumped by const readers (export/collect) when a torn slot is
  /// skipped, hence mutable.
  mutable std::atomic<long long> export_torn_{0};
  Slot slots_[kCapacity];
};

/// Adds the span-ring health gauges to `object`: "trace_enabled",
/// "trace_spans_recorded", "trace_spans_dropped" (ring wrap losses),
/// "trace_ring_capacity", "trace_ring_occupancy", and
/// "trace_export_torn_skipped".
void FillTraceRingMetrics(Json* object);

/// Records a completed span: always feeds the stage histogram, and the
/// ring too when tracing is enabled.
void RecordSpan(Stage stage, uint64_t trace_id, TimePoint start,
                TimePoint end, const char* arg_name = nullptr,
                long long arg_value = 0);

inline void RecordSpanSince(Stage stage, uint64_t trace_id, TimePoint start,
                            const char* arg_name = nullptr,
                            long long arg_value = 0) {
  RecordSpan(stage, trace_id, start, Now(), arg_name, arg_value);
}

/// RAII span covering a scope.
class ScopedSpan {
 public:
  ScopedSpan(Stage stage, uint64_t trace_id, const char* arg_name = nullptr,
             long long arg_value = 0)
      : stage_(stage),
        trace_id_(trace_id),
        arg_name_(arg_name),
        arg_value_(arg_value),
        start_(Now()) {}
  ~ScopedSpan() {
    RecordSpanSince(stage_, trace_id_, start_, arg_name_, arg_value_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Stage stage_;
  uint64_t trace_id_;
  const char* arg_name_;
  long long arg_value_;
  TimePoint start_;
};

// ---------------------------------------------------------------------------
// Kernel profiler

/// Opt-in per-op counters for the kernel layer: GEMM dispatch calls,
/// FLOPs, and wall time, plus thread-pool parallel regions, aggregated
/// per sampled token. Enabled by RT_PROFILE=1 in the environment or
/// --profile on the CLI; hooks cost one relaxed atomic load when off.
class KernelProfiler {
 public:
  enum class Op : int {
    kGemm = 0,
    kGemmTransB,
    kGemmTransA,
    kGemmPacked,
    kGemmPackedInt8,
    kParallelFor,
  };
  static constexpr int kOpCount = 6;

  static KernelProfiler& Instance();
  static const char* OpName(Op op);

  bool enabled() const { return ProfileEnabled(); }
  void SetEnabled(bool enabled);
  void Reset();

  /// Adds one call of `op`. flops = 0 for non-arithmetic ops.
  void RecordOp(Op op, long long flops, long long ns);

  /// Counts sampled tokens so ToJson can report per-token aggregates.
  void CountTokens(long long n);

  /// {"enabled","tokens","ops":{<op>:{calls,flops,seconds,gflops}},
  ///  "per_token":{gemm_calls,mflops,micros}}.
  Json ToJson() const;

 private:
  KernelProfiler() = default;

  struct Counter {
    std::atomic<long long> calls{0};
    std::atomic<long long> flops{0};
    std::atomic<long long> ns{0};
  };
  Counter counters_[kOpCount];
  std::atomic<long long> tokens_{0};
};

// ---------------------------------------------------------------------------
// Prometheus rendering & build info

/// Renders a /v1/metrics JSON object as Prometheus text exposition
/// (version 0.0.4). Mechanical mapping — numbers become rt_<key>
/// gauges, <prefix>latency_bucket_le/_count array pairs become
/// cumulative rt_<prefix>latency_seconds histograms, strings become
/// info-style gauges with a value label, nested objects recurse with
/// the key as prefix — so the two representations cannot drift.
std::string RenderPrometheus(const Json& metrics);

/// Compile-time build identity for /healthz.
struct BuildInfo {
  const char* git_sha;     ///< short SHA or "unknown"
  const char* build_type;  ///< CMAKE_BUILD_TYPE or "unspecified"
  const char* sanitizer;   ///< RT_SANITIZE or "none"
};
BuildInfo GetBuildInfo();

}  // namespace obs
}  // namespace rt

#endif  // RATATOUILLE_UTIL_OBS_H_
