#include "util/strings.h"

#include <cassert>
#include <cctype>
#include <cstdio>

namespace rt {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (keep_empty || !piece.empty()) out.emplace_back(piece);
    if (pos == s.size()) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  assert(!from.empty());
  std::string out;
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) break;
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  out.append(s.substr(start));
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(long long v) {
  bool negative = v < 0;
  unsigned long long uv =
      negative ? 0ull - static_cast<unsigned long long>(v)
               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(uv);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace rt
