#ifndef RATATOUILLE_UTIL_TABLE_H_
#define RATATOUILLE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace rt {

/// Plain-text table printer used by the benchmark harnesses to render
/// paper tables/figures as aligned ASCII (and optionally CSV).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment, a header rule and outer borders.
  std::string Render() const;

  /// Renders as CSV (RFC-4180-style quoting for commas/quotes/newlines).
  std::string RenderCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_TABLE_H_
