#ifndef RATATOUILLE_UTIL_JSON_H_
#define RATATOUILLE_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace rt {

/// A JSON value (null / bool / number / string / array / object) with a
/// recursive-descent parser and a writer. Numbers are doubles. Object
/// keys are kept in sorted order (std::map) so Dump() is deterministic.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}      // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}             // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s)                                        // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; preconditions checked with assert.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  /// Object field access; returns null Json when absent or not an object.
  const Json& Get(const std::string& key) const;

  /// Mutable object/array builders.
  Json& Set(const std::string& key, Json value);
  Json& Append(Json value);

  /// Serializes to a compact JSON string.
  std::string Dump() const;

  /// Parses a JSON document (rejects trailing garbage; depth-limited).
  static StatusOr<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_JSON_H_
