#ifndef RATATOUILLE_UTIL_STATUS_H_
#define RATATOUILLE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rt {

/// Error categories used across the library. Modeled on the Arrow/RocksDB
/// Status idiom: library code never throws across module boundaries;
/// fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  kAborted,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations with no payload.
///
/// Usage:
///   rt::Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error Status, mirroring absl::StatusOr,
  /// so `return value;` and `return Status::...;` both work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Asserts in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rt

/// Propagates a non-OK Status from an expression. Usage:
///   RT_RETURN_IF_ERROR(DoThing());
#define RT_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::rt::Status _rt_status = (expr);       \
    if (!_rt_status.ok()) return _rt_status; \
  } while (false)

/// Evaluates a StatusOr expression, propagating the error or binding the
/// value. Usage:
///   RT_ASSIGN_OR_RETURN(auto v, ComputeThing());
#define RT_ASSIGN_OR_RETURN(lhs, expr)                 \
  RT_ASSIGN_OR_RETURN_IMPL_(                           \
      RT_STATUS_CONCAT_(_rt_statusor_, __LINE__), lhs, expr)

#define RT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define RT_STATUS_CONCAT_(a, b) RT_STATUS_CONCAT_IMPL_(a, b)
#define RT_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // RATATOUILLE_UTIL_STATUS_H_
