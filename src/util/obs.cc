#include "util/obs.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace rt {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_profile_enabled{false};
}  // namespace internal

namespace {

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

/// Captures the process-start instant and applies RT_TRACE / RT_PROFILE
/// before main() runs, so hooks reached from any thread see the right
/// flags without ever touching a singleton guard.
struct ProcessInit {
  ProcessInit() : start(Clock::now()) {
    if (EnvFlagSet("RT_TRACE")) internal::g_trace_enabled.store(true);
    if (EnvFlagSet("RT_PROFILE")) internal::g_profile_enabled.store(true);
  }
  TimePoint start;
};
const ProcessInit g_process_init;

long long ToNs(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace

TimePoint ProcessStart() { return g_process_init.start; }

double UptimeSeconds() {
  return std::chrono::duration<double>(Now() - ProcessStart()).count();
}

// ---------------------------------------------------------------------------
// Stages

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRequest:
      return "request";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kSessionAcquire:
      return "session_acquire";
    case Stage::kPrefill:
      return "prefill";
    case Stage::kPrefillCached:
      return "prefill_cached";
    case Stage::kBatchStep:
      return "batch_step";
    case Stage::kSample:
      return "sample";
    case Stage::kResponseWrite:
      return "response_write";
    case Stage::kResponseStreamWrite:
      return "response_stream_write";
    case Stage::kRouteTry:
      return "route_try";
    case Stage::kPreempt:
      return "preempt";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// StageHistogram

// 1-2-5 per decade, 1us .. 10s.
const double StageHistogram::kBoundsSeconds[StageHistogram::kNumBounds] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};

void StageHistogram::Record(long long ns) {
  if (ns < 0) ns = 0;
  const double seconds = static_cast<double>(ns) * 1e-9;
  int bucket = kNumBounds;  // +Inf
  for (int i = 0; i < kNumBounds; ++i) {
    if (seconds <= kBoundsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  long long seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns,
                                        std::memory_order_relaxed)) {
  }
}

void StageHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

long long StageHistogram::count() const {
  long long total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double StageHistogram::QuantileUpperBoundSeconds(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  long long counts[kNumBounds + 1];
  long long total = 0;
  for (int i = 0; i <= kNumBounds; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  long long cumulative = 0;
  for (int i = 0; i < kNumBounds; ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return kBoundsSeconds[i];
    }
  }
  // Quantile lands in the overflow bucket; the max observed latency is
  // the tightest honest bound we have.
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

void StageHistogram::FillMetrics(const std::string& prefix,
                                 Json* object) const {
  // Same key shape as the serve request-latency histogram (see
  // LatencyHistogram::FillMetrics) so RenderPrometheus treats both
  // families identically.
  long long observations = 0;
  Json bounds{Json::Array{}};
  Json counts{Json::Array{}};
  for (int i = 0; i <= kNumBounds; ++i) {
    if (i < kNumBounds) {
      bounds.Append(kBoundsSeconds[i]);
    } else {
      bounds.Append("inf");
    }
    const long long n = buckets_[i].load(std::memory_order_relaxed);
    observations += n;
    counts.Append(static_cast<double>(n));
  }
  const double total_seconds =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  object->Set(prefix + "seconds_total", total_seconds);
  object->Set(prefix + "seconds_max",
              static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
                  1e-9);
  object->Set(prefix + "seconds_mean",
              observations > 0
                  ? total_seconds / static_cast<double>(observations)
                  : 0.0);
  object->Set(prefix + "latency_bucket_le", std::move(bounds));
  object->Set(prefix + "latency_bucket_count", std::move(counts));
}

namespace {

struct StageState {
  StageHistogram histograms[kStageCount];
  /// Queue wait split by traffic class: [0] interactive, [1] batch.
  StageHistogram class_queue_wait[2];
  std::atomic<long long> tokens_sampled{0};
  /// Wall time spent inside batch_step spans, the denominator of the
  /// decode-throughput gauge.
  std::atomic<long long> decode_ns{0};
};

StageState& Stages() {
  static StageState state;
  return state;
}

}  // namespace

StageHistogram& HistogramFor(Stage stage) {
  return Stages().histograms[static_cast<int>(stage)];
}

void CountSampledTokens(long long n) {
  Stages().tokens_sampled.fetch_add(n, std::memory_order_relaxed);
}

void RecordClassQueueWait(int traffic_class, long long ns) {
  if (traffic_class < 0 || traffic_class > 1) return;
  Stages().class_queue_wait[traffic_class].Record(ns);
}

void FillStageMetrics(Json* object) {
  StageState& state = Stages();
  static const Stage kAll[kStageCount] = {
      Stage::kRequest,       Stage::kQueueWait, Stage::kSessionAcquire,
      Stage::kPrefill,       Stage::kPrefillCached,
      Stage::kBatchStep,     Stage::kSample,    Stage::kResponseWrite,
      Stage::kResponseStreamWrite, Stage::kRouteTry, Stage::kPreempt};
  for (Stage stage : kAll) {
    HistogramFor(stage).FillMetrics(
        std::string("stage_") + StageName(stage) + "_", object);
  }
  state.class_queue_wait[0].FillMetrics("stage_queue_wait_interactive_",
                                        object);
  state.class_queue_wait[1].FillMetrics("stage_queue_wait_batch_", object);
  const long long tokens =
      state.tokens_sampled.load(std::memory_order_relaxed);
  const double decode_seconds =
      static_cast<double>(state.decode_ns.load(std::memory_order_relaxed)) *
      1e-9;
  object->Set("stage_tokens_sampled", static_cast<double>(tokens));
  object->Set("stage_tokens_per_sec",
              decode_seconds > 0.0
                  ? static_cast<double>(tokens) / decode_seconds
                  : 0.0);
}

void ResetStageMetrics() {
  StageState& state = Stages();
  for (auto& histogram : state.histograms) histogram.Reset();
  for (auto& histogram : state.class_queue_wait) histogram.Reset();
  state.tokens_sampled.store(0, std::memory_order_relaxed);
  state.decode_ns.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() = default;

void TraceRecorder::SetEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  head_.store(0, std::memory_order_relaxed);
  export_torn_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_release);
  }
}

uint64_t TraceRecorder::NextTraceId() {
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::Record(const char* name, uint64_t trace_id,
                           long long ts_ns, long long dur_ns,
                           const char* arg_name, long long arg_value) {
  if (!enabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kCapacity];
  // Seqlock write: odd = in progress. Readers that observe any of the
  // field stores below are guaranteed (release fence) to also observe
  // the odd seq, so a torn slot can never validate.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.arg_name.store(arg_name, std::memory_order_relaxed);
  slot.arg_value.store(arg_value, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

long long TraceRecorder::recorded() const {
  return static_cast<long long>(head_.load(std::memory_order_relaxed));
}

long long TraceRecorder::dropped() const {
  const long long total = recorded();
  return total > kCapacity ? total - kCapacity : 0;
}

long long TraceRecorder::export_torn() const {
  return export_torn_.load(std::memory_order_relaxed);
}

int TraceRecorder::occupancy() const {
  int published = 0;
  for (const Slot& slot : slots_) {
    const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if (seq != 0 && (seq & 1) == 0) ++published;
  }
  return published;
}

int TraceRecorder::CollectTrace(uint64_t trace_id,
                                std::vector<SpanCopy>* out) const {
  struct Keyed {
    uint64_t ticket;
    SpanCopy span;
  };
  std::vector<Keyed> found;
  for (const Slot& slot : slots_) {
    const uint64_t v1 = slot.seq.load(std::memory_order_acquire);
    if (v1 == 0) continue;
    if ((v1 & 1) != 0) {
      export_torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SpanCopy span;
    span.name = slot.name.load(std::memory_order_relaxed);
    span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    span.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    span.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    span.arg_value = slot.arg_value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != v1) {
      export_torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (span.name == nullptr || span.trace_id != trace_id) continue;
    found.push_back({v1 / 2 - 1, span});
  }
  std::sort(found.begin(), found.end(),
            [](const Keyed& a, const Keyed& b) {
              return a.ticket < b.ticket;
            });
  for (const Keyed& keyed : found) out->push_back(keyed.span);
  return static_cast<int>(found.size());
}

int TraceRecorder::SnapshotRecent(SpanCopy* out, int max) const {
  if (max <= 0) return 0;
  int copied = 0;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t window =
      head > static_cast<uint64_t>(kCapacity) ? kCapacity : head;
  for (uint64_t back = 1; back <= window && copied < max; ++back) {
    const uint64_t ticket = head - back;
    const Slot& slot = slots_[ticket % kCapacity];
    const uint64_t want = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    SpanCopy span;
    span.name = slot.name.load(std::memory_order_relaxed);
    span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    span.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    span.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    span.arg_value = slot.arg_value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    if (span.name == nullptr) continue;
    out[copied++] = span;
  }
  return copied;
}

void FillTraceRingMetrics(Json* object) {
  const TraceRecorder& recorder = TraceRecorder::Instance();
  object->Set("trace_enabled", TraceEnabled());
  object->Set("trace_spans_recorded",
              static_cast<double>(recorder.recorded()));
  object->Set("trace_spans_dropped",
              static_cast<double>(recorder.dropped()));
  object->Set("trace_ring_capacity",
              static_cast<double>(TraceRecorder::kCapacity));
  object->Set("trace_ring_occupancy",
              static_cast<double>(recorder.occupancy()));
  object->Set("trace_export_torn_skipped",
              static_cast<double>(recorder.export_torn()));
}

Json TraceRecorder::ExportChromeJson() const {
  struct Event {
    const char* name;
    uint64_t trace_id;
    long long ts_ns;
    long long dur_ns;
    const char* arg_name;
    long long arg_value;
  };
  std::vector<Event> events;
  events.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const uint64_t v1 = slot.seq.load(std::memory_order_acquire);
    if (v1 == 0) continue;
    if ((v1 & 1) != 0) {
      export_torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Event ev;
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    ev.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    ev.arg_value = slot.arg_value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != v1) {
      export_torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (ev.name == nullptr) continue;
    events.push_back(ev);
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              // Longer spans first at equal start so parents precede
              // children in the export.
              return a.dur_ns > b.dur_ns;
            });

  Json trace_events{Json::Array{}};
  std::vector<uint64_t> tids;
  for (const Event& ev : events) {
    Json entry{Json::Object{}};
    entry.Set("name", ev.name);
    entry.Set("cat", "rt");
    entry.Set("ph", "X");
    entry.Set("ts", static_cast<double>(ev.ts_ns) * 1e-3);   // micros
    entry.Set("dur", static_cast<double>(ev.dur_ns) * 1e-3);
    entry.Set("pid", 1);
    entry.Set("tid", static_cast<double>(ev.trace_id));
    Json args{Json::Object{}};
    args.Set("trace_id", static_cast<double>(ev.trace_id));
    if (ev.arg_name != nullptr) {
      args.Set(ev.arg_name, static_cast<double>(ev.arg_value));
    }
    entry.Set("args", std::move(args));
    trace_events.Append(std::move(entry));
    if (std::find(tids.begin(), tids.end(), ev.trace_id) == tids.end()) {
      tids.push_back(ev.trace_id);
    }
  }
  // Name each per-request track (and the process) so Perfetto shows
  // "trace N" lanes instead of bare numeric tids.
  {
    Json process_name{Json::Object{}};
    process_name.Set("name", "process_name");
    process_name.Set("ph", "M");
    process_name.Set("pid", 1);
    Json args{Json::Object{}};
    args.Set("name", "ratatouille");
    process_name.Set("args", std::move(args));
    trace_events.Append(std::move(process_name));
  }
  for (const uint64_t tid : tids) {
    Json thread_name{Json::Object{}};
    thread_name.Set("name", "thread_name");
    thread_name.Set("ph", "M");
    thread_name.Set("pid", 1);
    thread_name.Set("tid", static_cast<double>(tid));
    Json args{Json::Object{}};
    char label[32];
    if (tid == 0) {
      std::snprintf(label, sizeof(label), "untraced");
    } else {
      std::snprintf(label, sizeof(label), "trace %" PRIu64, tid);
    }
    args.Set("name", label);
    thread_name.Set("args", std::move(args));
    trace_events.Append(std::move(thread_name));
  }

  Json out{Json::Object{}};
  out.Set("traceEvents", std::move(trace_events));
  out.Set("displayTimeUnit", "ms");
  out.Set("spans_recorded", static_cast<double>(recorded()));
  out.Set("spans_dropped", static_cast<double>(dropped()));
  if (ProfileEnabled()) {
    out.Set("kernelProfile", KernelProfiler::Instance().ToJson());
  }
  return out;
}

Status TraceRecorder::ExportToFile(const std::string& path) const {
  const std::string text = ExportChromeJson().Dump();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !closed) {
    return Status::IoError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

void RecordSpan(Stage stage, uint64_t trace_id, TimePoint start,
                TimePoint end, const char* arg_name, long long arg_value) {
  const long long dur_ns = ToNs(end - start);
  HistogramFor(stage).Record(dur_ns);
  if (stage == Stage::kBatchStep) {
    Stages().decode_ns.fetch_add(dur_ns < 0 ? 0 : dur_ns,
                                 std::memory_order_relaxed);
  }
  if (TraceEnabled()) {
    TraceRecorder::Instance().Record(
        StageName(stage), trace_id, ToNs(start - ProcessStart()),
        dur_ns < 0 ? 0 : dur_ns, arg_name, arg_value);
  }
}

// ---------------------------------------------------------------------------
// KernelProfiler

KernelProfiler& KernelProfiler::Instance() {
  static KernelProfiler profiler;
  return profiler;
}

const char* KernelProfiler::OpName(Op op) {
  switch (op) {
    case Op::kGemm:
      return "gemm";
    case Op::kGemmTransB:
      return "gemm_trans_b";
    case Op::kGemmTransA:
      return "gemm_trans_a";
    case Op::kGemmPacked:
      return "gemm_packed";
    case Op::kGemmPackedInt8:
      return "gemm_packed_int8";
    case Op::kParallelFor:
      return "parallel_for";
  }
  return "unknown";
}

void KernelProfiler::SetEnabled(bool enabled) {
  internal::g_profile_enabled.store(enabled, std::memory_order_relaxed);
}

void KernelProfiler::Reset() {
  for (Counter& counter : counters_) {
    counter.calls.store(0, std::memory_order_relaxed);
    counter.flops.store(0, std::memory_order_relaxed);
    counter.ns.store(0, std::memory_order_relaxed);
  }
  tokens_.store(0, std::memory_order_relaxed);
}

void KernelProfiler::RecordOp(Op op, long long flops, long long ns) {
  Counter& counter = counters_[static_cast<int>(op)];
  counter.calls.fetch_add(1, std::memory_order_relaxed);
  counter.flops.fetch_add(flops, std::memory_order_relaxed);
  counter.ns.fetch_add(ns < 0 ? 0 : ns, std::memory_order_relaxed);
}

void KernelProfiler::CountTokens(long long n) {
  tokens_.fetch_add(n, std::memory_order_relaxed);
}

Json KernelProfiler::ToJson() const {
  Json out{Json::Object{}};
  out.Set("enabled", enabled());
  const long long tokens = tokens_.load(std::memory_order_relaxed);
  out.Set("tokens", static_cast<double>(tokens));
  Json ops{Json::Object{}};
  long long gemm_calls = 0;
  long long total_flops = 0;
  long long total_ns = 0;
  for (int i = 0; i < kOpCount; ++i) {
    const Counter& counter = counters_[i];
    const long long calls = counter.calls.load(std::memory_order_relaxed);
    const long long flops = counter.flops.load(std::memory_order_relaxed);
    const long long ns = counter.ns.load(std::memory_order_relaxed);
    const Op op = static_cast<Op>(i);
    if (op != Op::kParallelFor) {
      gemm_calls += calls;
      total_flops += flops;
      total_ns += ns;
    }
    Json entry{Json::Object{}};
    entry.Set("calls", static_cast<double>(calls));
    entry.Set("flops", static_cast<double>(flops));
    entry.Set("seconds", static_cast<double>(ns) * 1e-9);
    entry.Set("gflops", ns > 0 ? static_cast<double>(flops) /
                                     static_cast<double>(ns)
                               : 0.0);
    ops.Set(OpName(op), std::move(entry));
  }
  out.Set("ops", std::move(ops));
  Json per_token{Json::Object{}};
  const double denom = tokens > 0 ? static_cast<double>(tokens) : 1.0;
  per_token.Set("gemm_calls", static_cast<double>(gemm_calls) / denom);
  per_token.Set("mflops",
                static_cast<double>(total_flops) * 1e-6 / denom);
  per_token.Set("micros", static_cast<double>(total_ns) * 1e-3 / denom);
  out.Set("per_token", std::move(per_token));
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus rendering

namespace {

std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

constexpr const char kLeSuffix[] = "latency_bucket_le";
constexpr const char kCountSuffix[] = "latency_bucket_count";

bool EndsWith(const std::string& text, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return text.size() >= n &&
         text.compare(text.size() - n, n, suffix) == 0;
}

/// Every family gets a # HELP line ahead of # TYPE so scrapers stop
/// guessing types (exposition format 0.0.4 wants HELP first).
void AppendFamilyHeader(const std::string& name, const char* type,
                        const std::string& help, std::string* out) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

/// Renders `<prefix>latency_bucket_le` / `_count` pairs as one
/// cumulative Prometheus histogram.
void RenderHistogramFamily(const std::string& family_prefix,
                           const Json::Object& fields, const Json& le,
                           const Json& counts, std::string* out) {
  const std::string name =
      SanitizeMetricName("rt_" + family_prefix + "latency_seconds");
  AppendFamilyHeader(name, "histogram",
                     "Cumulative latency histogram (seconds) for '" +
                         family_prefix + "' from /v1/metrics",
                     out);
  const auto& bounds = le.AsArray();
  const auto& bucket_counts = counts.AsArray();
  long long cumulative = 0;
  const size_t n = std::min(bounds.size(), bucket_counts.size());
  for (size_t i = 0; i < n; ++i) {
    cumulative +=
        static_cast<long long>(bucket_counts[i].AsNumber() + 0.5);
    const std::string bound =
        bounds[i].is_number() ? FormatNumber(bounds[i].AsNumber())
                              : std::string("+Inf");
    *out += name + "_bucket{le=\"" + bound + "\"} " +
            FormatNumber(static_cast<double>(cumulative)) + "\n";
  }
  const auto sum = fields.find(family_prefix + "seconds_total");
  if (sum != fields.end() && sum->second.is_number()) {
    *out += name + "_sum " + FormatNumber(sum->second.AsNumber()) + "\n";
  }
  *out += name + "_count " +
          FormatNumber(static_cast<double>(cumulative)) + "\n";
}

void RenderObject(const Json& object, const std::string& prefix,
                  std::string* out) {
  if (!object.is_object()) return;
  const Json::Object& fields = object.AsObject();
  for (const auto& [key, value] : fields) {
    const std::string flat = prefix + key;
    if (EndsWith(key, kLeSuffix) && value.is_array()) {
      const std::string family_prefix =
          key.substr(0, key.size() - std::strlen(kLeSuffix));
      const auto counts = fields.find(family_prefix + kCountSuffix);
      if (counts != fields.end() && counts->second.is_array()) {
        RenderHistogramFamily(prefix + family_prefix, fields, value,
                              counts->second, out);
        continue;
      }
    }
    if (EndsWith(key, kCountSuffix) && value.is_array()) {
      continue;  // consumed by the matching _le family above
    }
    if (value.is_number()) {
      const std::string name = SanitizeMetricName("rt_" + flat);
      AppendFamilyHeader(name, "gauge",
                         "Gauge for /v1/metrics field '" + flat + "'",
                         out);
      *out += name + " " + FormatNumber(value.AsNumber()) + "\n";
    } else if (value.is_bool()) {
      const std::string name = SanitizeMetricName("rt_" + flat);
      AppendFamilyHeader(name, "gauge",
                         "Gauge for /v1/metrics field '" + flat + "'",
                         out);
      *out += name + (value.AsBool() ? " 1\n" : " 0\n");
    } else if (value.is_string()) {
      const std::string name = SanitizeMetricName("rt_" + flat);
      AppendFamilyHeader(
          name, "gauge",
          "Info gauge; the 'value' label carries /v1/metrics field '" +
              flat + "'",
          out);
      *out += name + "{value=\"" + EscapeLabelValue(value.AsString()) +
              "\"} 1\n";
    } else if (value.is_object()) {
      RenderObject(value, flat + "_", out);
    }
    // Arrays outside histogram families have no Prometheus shape; the
    // schema test keeps the JSON free of any.
  }
}

}  // namespace

std::string RenderPrometheus(const Json& metrics) {
  std::string out;
  RenderObject(metrics, "", &out);
  return out;
}

// ---------------------------------------------------------------------------
// Build info

BuildInfo GetBuildInfo() {
  BuildInfo info;
#ifdef RT_GIT_SHA
  info.git_sha = RT_GIT_SHA;
#else
  info.git_sha = "unknown";
#endif
#ifdef RT_BUILD_TYPE
  info.build_type = (RT_BUILD_TYPE[0] != '\0') ? RT_BUILD_TYPE
                                               : "unspecified";
#else
  info.build_type = "unspecified";
#endif
#ifdef RT_SANITIZE_MODE
  info.sanitizer = (RT_SANITIZE_MODE[0] != '\0') ? RT_SANITIZE_MODE
                                                 : "none";
#else
  info.sanitizer = "none";
#endif
  return info;
}

}  // namespace obs
}  // namespace rt
