#ifndef RATATOUILLE_UTIL_FLIGHT_RECORDER_H_
#define RATATOUILLE_UTIL_FLIGHT_RECORDER_H_

#include <atomic>
#include <string>

#include "util/json.h"
#include "util/status.h"

namespace rt {
namespace obs {

/// Crash flight recorder: a black box that survives the process.
///
/// Install() pre-opens a postmortem file and registers a SIGSEGV /
/// SIGABRT / SIGBUS handler. The handler rewrites the file with the
/// crash signal, the gauge table (sched/batch occupancy, updated by
/// the hot loops with plain atomic stores), the last published metrics
/// snapshot, and the most recent spans from the trace ring — using
/// only async-signal-safe primitives (pwrite/ftruncate, hand-rolled
/// number formatting, no allocation, no locks) — then re-raises with
/// the default disposition so exit codes stay honest.
///
/// SIGKILL never runs a handler, so the metrics-history sampler also
/// calls WriteHeartbeat() on its cadence: a killed replica still
/// leaves its last pre-kill snapshot (signal = 0) behind. Either way
/// the replica supervisor collects the file when it reaps the process,
/// and the router serves the collection at GET /v1/debug/postmortem.
class FlightRecorder {
 public:
  static constexpr int kMaxGauges = 32;
  static constexpr int kMaxSnapshotBytes = 64 * 1024;
  /// Most recent ring spans included in a dump (newest first).
  static constexpr int kMaxDumpSpans = 256;

  static FlightRecorder& Instance();

  /// Opens (truncating) the postmortem file, installs the signal
  /// handlers, and writes an initial heartbeat so the file is
  /// collectible from the first instant. Idempotent per path; a second
  /// call switches files. Not thread-safe against concurrent dumps —
  /// call during startup.
  Status Install(const std::string& path);
  bool installed() const { return fd_.load(std::memory_order_acquire) >= 0; }
  std::string path() const;

  /// Registers (or finds) a named gauge slot; returns its index, or -1
  /// when the table is full. Names must be string literals (stored by
  /// pointer, read from the signal handler).
  int RegisterGauge(const char* name);
  /// Plain relaxed store — cheap enough for per-batch-step updates.
  void SetGauge(int index, long long value);
  long long gauge(int index) const;

  /// Publishes a metrics snapshot (JSON text) for inclusion in dumps.
  /// Double-buffered with an atomic publish index, so a dump taken
  /// mid-store still reads a complete older snapshot. Oversized
  /// snapshots (> kMaxSnapshotBytes) are dropped.
  void StoreSnapshot(const std::string& metrics_json);

  /// Writes a heartbeat dump (signal = 0) from normal context. No-op
  /// until installed.
  void WriteHeartbeat();

  /// Test hook: runs the exact dump path the signal handler uses.
  void WriteDumpForSignal(int signal);

  /// Heartbeats + crash dumps written so far.
  long long dumps_written() const {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  FlightRecorder() = default;

  /// The async-signal-safe core: serializes state to fd_ at offset 0.
  void WriteDump(int signal);

  std::atomic<int> fd_{-1};
  /// Guarded copy of the path for path(); never touched in handlers.
  std::string path_;

  struct Gauge {
    std::atomic<const char*> name{nullptr};
    std::atomic<long long> value{0};
  };
  Gauge gauges_[kMaxGauges];

  /// Double-buffered snapshot text; published_ is the readable index
  /// (-1 = none yet), lengths tracked per buffer.
  char snapshots_[2][kMaxSnapshotBytes];
  std::atomic<int> snapshot_lens_[2] = {};
  std::atomic<int> published_{-1};

  std::atomic<long long> dumps_{0};
};

/// Parses a postmortem file written by FlightRecorder. Errors on
/// missing/empty/syntactically torn files.
StatusOr<Json> ParsePostmortemFile(const std::string& path);

}  // namespace obs
}  // namespace rt

#endif  // RATATOUILLE_UTIL_FLIGHT_RECORDER_H_
