#include "util/table.h"

#include <algorithm>
#include <cassert>

namespace rt {
namespace {

std::string CsvEscape(const std::string& field) {
  bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (size_t w : widths) {
      s.append(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      s += ' ';
      s += cells[c];
      s.append(widths[c] - cells[c].size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out = rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string TextTable::RenderCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace rt
