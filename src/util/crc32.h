#ifndef RATATOUILLE_UTIL_CRC32_H_
#define RATATOUILLE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace rt {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum zlib and
/// PNG use. Guards on-disk payloads (checkpoints) against truncation
/// and bit flips.
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

/// Streaming form: feed chunks with the running value, starting from 0.
///   uint32_t crc = 0;
///   crc = Crc32Update(crc, a, la);
///   crc = Crc32Update(crc, b, lb);  // == Crc32(a+b)
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace rt

#endif  // RATATOUILLE_UTIL_CRC32_H_
