#include "util/fault_injection.h"

namespace rt {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.insert_or_assign(point, PointState{});
  it->second.spec = spec;
  it->second.rng = Rng(spec.seed);
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

std::optional<FaultInjector::Fired> FaultInjector::Hit(
    const std::string& point) {
  // Inert fast path: no point armed anywhere.
  if (armed_points_.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return std::nullopt;
  PointState& state = it->second;
  const long long hit = state.hits++;
  if (hit < state.spec.skip) return std::nullopt;
  if (state.spec.count >= 0 &&
      hit >= static_cast<long long>(state.spec.skip) + state.spec.count) {
    return std::nullopt;
  }
  if (state.spec.probability < 1.0 &&
      state.rng.NextDouble() >= state.spec.probability) {
    return std::nullopt;
  }
  ++state.fires;
  return Fired{state.spec.amount};
}

long long FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

long long FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace rt
