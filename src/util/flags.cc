#include "util/flags.h"

#include <cstdlib>

#include "util/strings.h"

namespace rt {

ArgParser::ArgParser(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool ArgParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<long long> ArgParser::GetInt(const std::string& key,
                                      long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
  return v;
}

StatusOr<double> ArgParser::GetDouble(const std::string& key,
                                      double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

bool ArgParser::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace rt
