#ifndef RATATOUILLE_UTIL_TIMER_H_
#define RATATOUILLE_UTIL_TIMER_H_

#include <chrono>

namespace rt {

/// Monotonic wall-clock stopwatch used by trainers and benchmarks.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_TIMER_H_
