#ifndef RATATOUILLE_UTIL_STRINGS_H_
#define RATATOUILLE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rt {

/// Splits `s` on `delim`, dropping empty pieces when `keep_empty` is false.
std::vector<std::string> Split(std::string_view s, char delim,
                               bool keep_empty = false);

/// Splits on any whitespace run; never yields empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces all non-overlapping occurrences of `from` with `to`.
/// Precondition: `from` is non-empty.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` decimal places (locale-independent).
std::string FormatDouble(double v, int digits);

/// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(long long v);

}  // namespace rt

#endif  // RATATOUILLE_UTIL_STRINGS_H_
