#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace rt {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  // Avoid log(0).
  while (u1 <= 1e-300) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace rt
