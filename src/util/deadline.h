#ifndef RATATOUILLE_UTIL_DEADLINE_H_
#define RATATOUILLE_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

namespace rt {

/// A point in monotonic time by which work must finish. Defaults to
/// "no deadline". Cheap to copy and cheap to poll, so decode loops can
/// check it once per generated token. Deadlines compose by taking the
/// earlier of two (see EarlierOf) and are carried through
/// GenerationOptions from the serving layer down to the models.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (ms <= 0 is already expired).
  static Deadline AfterMillis(long long ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// Expires at an absolute monotonic instant (e.g. queue admission
  /// time plus the request budget).
  static Deadline At(Clock::time_point when) { return Deadline(when); }

  bool is_infinite() const { return !finite_; }

  bool expired() const { return finite_ && Clock::now() >= when_; }

  /// Milliseconds until expiry: <= 0 when expired, max() when infinite.
  long long remaining_millis() const {
    if (!finite_) return std::numeric_limits<long long>::max();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               when_ - Clock::now())
        .count();
  }

  /// The absolute expiry instant. Precondition: !is_infinite().
  Clock::time_point when() const { return when_; }

  /// The earlier (stricter) of two deadlines.
  static Deadline EarlierOf(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return b;
    if (b.is_infinite()) return a;
    return a.when_ <= b.when_ ? a : b;
  }

 private:
  explicit Deadline(Clock::time_point when) : finite_(true), when_(when) {}

  bool finite_ = false;
  Clock::time_point when_{};
};

/// A shared flag for cooperative cancellation. The owner (e.g. the
/// serving layer draining on shutdown) fires it; workers poll
/// cancelled() at safe points — the decode loops check once per token —
/// and return a partial result instead of running blind. Thread-safe;
/// firing is sticky until Reset().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void RequestCancel() {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token. Only safe while no worker is polling it (e.g.
  /// between server Start() cycles).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_DEADLINE_H_
