#ifndef RATATOUILLE_UTIL_RNG_H_
#define RATATOUILLE_UTIL_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace rt {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library takes an explicit
/// Rng (or seed) so that runs are reproducible bit-for-bit: two runs with
/// the same seed produce identical corpora, initializations and samples.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Precondition: !v.empty().
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

  /// Samples an index proportional to the (non-negative) weights.
  /// Precondition: weights non-empty, sum > 0.
  size_t WeightedChoice(const std::vector<double>& weights);

  /// Derives an independent child generator (for parallel substreams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_RNG_H_
