#ifndef RATATOUILLE_UTIL_LOGGING_H_
#define RATATOUILLE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction if the global
/// level admits it. Cheap when suppressed (string build only).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Aborts the process after the message is flushed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rt

/// Stream-style logging: RT_LOG(Info) << "trained " << n << " steps";
#define RT_LOG(level)                      \
  ::rt::internal_logging::LogMessage(      \
      ::rt::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal check, active in all build modes. Aborts with file:line and the
/// failed condition; additional context may be streamed.
#define RT_CHECK(cond)                                              \
  if (!(cond))                                                      \
  ::rt::internal_logging::CheckFailure(__FILE__, __LINE__, #cond).stream()

#endif  // RATATOUILLE_UTIL_LOGGING_H_
