#include "util/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/obs.h"

namespace rt {
namespace obs {

namespace {

/// One writer may serialize to the file at a time. Heartbeats that
/// lose the race skip (the next tick retries); the crash handler spins
/// a bounded while for an in-flight heartbeat to drain, then writes
/// regardless (better a possibly-torn dump than none).
std::atomic<bool> g_dump_busy{false};

void CrashHandler(int signal_number) {
  FlightRecorder::Instance().WriteDumpForSignal(signal_number);
  // Restore the default disposition and re-raise: the signal is
  // blocked for the duration of this handler, so the re-raise lands
  // on return and the process dies with the honest wait status.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_DFL;
  sigaction(signal_number, &action, nullptr);
  raise(signal_number);
}

/// Buffered async-signal-safe writer over pwrite: no allocation, no
/// stdio, no locale. All content is ASCII produced by the methods
/// below.
struct DumpWriter {
  explicit DumpWriter(int fd) : fd(fd) {}

  void Flush() {
    int written = 0;
    while (written < len) {
      const ssize_t n =
          pwrite(fd, buf + written, static_cast<size_t>(len - written),
                 offset + written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<int>(n);
    }
    offset += len;
    len = 0;
  }

  void Put(char c) {
    if (len == static_cast<int>(sizeof(buf))) Flush();
    buf[len++] = c;
  }

  void Str(const char* s) {
    for (; *s != '\0'; ++s) Put(*s);
  }

  void Int(long long value) {
    char digits[24];
    int n = 0;
    unsigned long long magnitude;
    if (value < 0) {
      Put('-');
      magnitude = static_cast<unsigned long long>(-(value + 1)) + 1;
    } else {
      magnitude = static_cast<unsigned long long>(value);
    }
    do {
      digits[n++] = static_cast<char>('0' + magnitude % 10);
      magnitude /= 10;
    } while (magnitude != 0);
    while (n > 0) Put(digits[--n]);
  }

  /// JSON string literal; escapes quotes/backslashes, drops other
  /// control characters (our names are lowercase identifiers anyway).
  void Quoted(const char* s) {
    Put('"');
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        Put('\\');
        Put(c);
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        Put(c);
      }
    }
    Put('"');
  }

  int fd;
  off_t offset = 0;
  int len = 0;
  bool ok = true;
  char buf[4096];
};

}  // namespace

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder recorder;
  return recorder;
}

Status FlightRecorder::Install(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open postmortem file '" + path + "'");
  }
  const int previous = fd_.exchange(fd, std::memory_order_acq_rel);
  if (previous >= 0) ::close(previous);
  path_ = path;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
  sigaction(SIGBUS, &action, nullptr);

  // The file is collectible from the first instant — a replica
  // SIGKILLed before its first sampler tick still leaves a dump.
  WriteHeartbeat();
  return Status::OK();
}

std::string FlightRecorder::path() const { return path_; }

int FlightRecorder::RegisterGauge(const char* name) {
  for (int i = 0; i < kMaxGauges; ++i) {
    const char* existing =
        gauges_[i].name.load(std::memory_order_acquire);
    if (existing == nullptr) {
      const char* expected = nullptr;
      if (gauges_[i].name.compare_exchange_strong(
              expected, name, std::memory_order_acq_rel)) {
        return i;
      }
      existing = expected;
    }
    if (existing == name || std::strcmp(existing, name) == 0) return i;
  }
  return -1;
}

void FlightRecorder::SetGauge(int index, long long value) {
  if (index < 0 || index >= kMaxGauges) return;
  gauges_[index].value.store(value, std::memory_order_relaxed);
}

long long FlightRecorder::gauge(int index) const {
  if (index < 0 || index >= kMaxGauges) return 0;
  return gauges_[index].value.load(std::memory_order_relaxed);
}

void FlightRecorder::StoreSnapshot(const std::string& metrics_json) {
  if (metrics_json.size() >= kMaxSnapshotBytes) return;
  const int current = published_.load(std::memory_order_acquire);
  const int next = current == 0 ? 1 : 0;
  std::memcpy(snapshots_[next], metrics_json.data(), metrics_json.size());
  snapshot_lens_[next].store(static_cast<int>(metrics_json.size()),
                             std::memory_order_release);
  published_.store(next, std::memory_order_release);
}

void FlightRecorder::WriteHeartbeat() {
  if (!installed()) return;
  if (g_dump_busy.exchange(true, std::memory_order_acquire)) return;
  WriteDump(0);
  g_dump_busy.store(false, std::memory_order_release);
}

void FlightRecorder::WriteDumpForSignal(int signal_number) {
  if (!installed()) return;
  // Wait (bounded) for an in-flight heartbeat; then take the file.
  for (long spin = 0; spin < 1000000; ++spin) {
    if (!g_dump_busy.exchange(true, std::memory_order_acquire)) break;
  }
  WriteDump(signal_number);
  g_dump_busy.store(false, std::memory_order_release);
}

void FlightRecorder::WriteDump(int signal_number) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  dumps_.fetch_add(1, std::memory_order_relaxed);

  DumpWriter w(fd);
  w.Str("{\"postmortem_version\":1,\"signal\":");
  w.Int(signal_number);
  w.Str(",\"pid\":");
  w.Int(static_cast<long long>(::getpid()));
  w.Str(",\"uptime_s\":");
  // Integer seconds: no floating-point formatting in signal context.
  w.Int(static_cast<long long>(UptimeSeconds()));
  w.Str(",\"dumps_written\":");
  w.Int(dumps_.load(std::memory_order_relaxed));

  w.Str(",\"gauges\":{");
  bool first = true;
  for (const Gauge& gauge : gauges_) {
    const char* name = gauge.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    if (!first) w.Put(',');
    first = false;
    w.Quoted(name);
    w.Put(':');
    w.Int(gauge.value.load(std::memory_order_relaxed));
  }
  w.Put('}');

  // Most recent ring spans, newest first (what was the process doing).
  static SpanCopy spans[kMaxDumpSpans];  // static: keep handler stack flat
  const int span_count =
      TraceRecorder::Instance().SnapshotRecent(spans, kMaxDumpSpans);
  w.Str(",\"spans\":[");
  for (int i = 0; i < span_count; ++i) {
    if (i > 0) w.Put(',');
    w.Str("{\"name\":");
    w.Quoted(spans[i].name);
    w.Str(",\"trace_id\":");
    w.Int(static_cast<long long>(spans[i].trace_id));
    w.Str(",\"ts_ns\":");
    w.Int(spans[i].ts_ns);
    w.Str(",\"dur_ns\":");
    w.Int(spans[i].dur_ns);
    if (spans[i].arg_name != nullptr) {
      w.Put(',');
      w.Quoted(spans[i].arg_name);
      w.Put(':');
      w.Int(spans[i].arg_value);
    }
    w.Put('}');
  }
  w.Put(']');

  // Last published metrics snapshot (already-valid JSON text).
  w.Str(",\"metrics\":");
  const int published = published_.load(std::memory_order_acquire);
  if (published >= 0) {
    const int length =
        snapshot_lens_[published].load(std::memory_order_acquire);
    const char* text = snapshots_[published];
    for (int i = 0; i < length; ++i) w.Put(text[i]);
  } else {
    w.Str("null");
  }
  w.Str("}\n");
  w.Flush();
  // Drop any longer previous dump so the file stays parseable.
  if (w.ok) ftruncate(fd, w.offset);
}

StatusOr<Json> ParsePostmortemFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open postmortem file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string content = text.str();
  if (content.empty()) {
    return Status::IoError("postmortem file '" + path + "' is empty");
  }
  return Json::Parse(content);
}

}  // namespace obs
}  // namespace rt
