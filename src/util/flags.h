#ifndef RATATOUILLE_UTIL_FLAGS_H_
#define RATATOUILLE_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace rt {

/// Minimal command-line parser for the CLI tool and examples.
///
/// Accepts "--key=value", "--key value" and bare "--switch" (boolean)
/// forms; everything else is a positional argument. "--" ends flag
/// parsing. Unknown flags are not an error (callers validate).
class ArgParser {
 public:
  /// Parses argv (argv[0] is skipped).
  ArgParser(int argc, const char* const* argv);

  /// True if the flag was given (with or without a value).
  bool Has(const std::string& key) const;

  /// String value of --key (last occurrence wins), or `fallback`.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Integer value, or `fallback` when absent. Returns InvalidArgument
  /// when present but unparseable.
  StatusOr<long long> GetInt(const std::string& key,
                             long long fallback) const;

  /// Double value, or `fallback` when absent.
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;

  /// Bare "--switch" or "--switch=true/false".
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;  // "" = bare switch
  std::vector<std::string> positional_;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_FLAGS_H_
