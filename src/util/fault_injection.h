#ifndef RATATOUILLE_UTIL_FAULT_INJECTION_H_
#define RATATOUILLE_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.h"

namespace rt {

/// Deterministic, seed-driven fault injection for robustness tests.
///
/// Production code is instrumented with named fault *points* — e.g.
/// "http.write.short", "backend.generate.fail", "ckpt.truncate" — by
/// calling Hit(point) on the failure path it wants to make testable.
/// The registry is compiled in always but inert unless a test Arm()s a
/// point: the un-armed fast path is a single relaxed atomic load, so
/// the instrumentation costs nothing in normal serving.
///
/// Determinism: which hits fire is a pure function of the FaultSpec
/// (skip/count window) and, when probability < 1, of a per-point Rng
/// seeded from spec.seed — never of wall-clock time. The same test run
/// therefore injects the same faults every time, in CI and under
/// sanitizers.
///
/// Registered points (kept in sync with call sites):
///   http.read.slow      sleep `amount` ms before each socket read
///   http.read.short     cap each socket read to `amount` (>=1) bytes
///   http.write.slow     sleep `amount` ms before each response write
///   http.write.short    cap each send() to `amount` (>=1) bytes
///   http.write.fail     fail the response write with an error
///   backend.generate.latency  sleep `amount` ms inside the session slot
///   backend.generate.fail     fail the generation with Internal
///   ckpt.truncate       chop `amount` (>=4) bytes off a saved checkpoint
///   trace.export.fail   fail the /v1/trace export (503 envelope; never
///                       touches the generate path)
///   metrics.render.slow sleep `amount` ms while rendering /v1/metrics
///   data.load.truncate  chop `amount` (>=1) bytes off a recipes JSONL
///                       file as it is read (structured load error)
///   tokenizer.vocab.corrupt  corrupt a vocab/BPE file as it is read
///                       (structured deserialize error)
///   replica.exit        replica process _Exit(23)s at the next admission
///   replica.hang        replica healthz wedges for `amount` ms (the
///                       supervisor's probe timeout sees a dead replica)
///   replica.slow-accept sleep `amount` ms before each accept()ed
///                       connection is queued
class FaultInjector {
 public:
  /// When and how a fault point fires. Hits are counted per point from
  /// the moment it is armed.
  struct FaultSpec {
    /// Pass through this many hits before firing starts.
    int skip = 0;
    /// Fire at most this many times after `skip` (-1 = unlimited).
    int count = -1;
    /// Chance an in-window hit actually fires; draws come from a
    /// deterministic per-point Rng seeded with `seed`.
    double probability = 1.0;
    uint64_t seed = 0;
    /// Magnitude knob, interpreted by the call site: latency in ms for
    /// *.slow points, bytes per op for *.short, bytes chopped for
    /// ckpt.truncate.
    int amount = 0;
  };

  /// What an armed point tells its call site when it fires.
  struct Fired {
    int amount = 0;
  };

  /// Process-wide registry (fault points are reached from arbitrary
  /// threads: HTTP workers, sessions, checkpoint writers).
  static FaultInjector& Instance();

  /// Arms `point`; resets its hit/fire counters.
  void Arm(const std::string& point, FaultSpec spec);

  void Disarm(const std::string& point);

  /// Disarms every point (test teardown).
  void Reset();

  /// Counts a hit on `point`; returns engaged iff the fault fires this
  /// hit. Inert (and cheap) when the point is not armed.
  std::optional<Fired> Hit(const std::string& point);

  /// Times `point` was reached since it was armed (0 when not armed).
  long long hits(const std::string& point) const;

  /// Times `point` actually fired since it was armed.
  long long fires(const std::string& point) const;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultSpec spec;
    Rng rng{0};
    long long hits = 0;
    long long fires = 0;
  };

  /// Number of armed points; the fast path's only read.
  std::atomic<int> armed_points_{0};
  mutable std::mutex mutex_;
  std::map<std::string, PointState> points_;
};

}  // namespace rt

#endif  // RATATOUILLE_UTIL_FAULT_INJECTION_H_
