#ifndef RATATOUILLE_UTIL_SLO_H_
#define RATATOUILLE_UTIL_SLO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/obs.h"

namespace rt {
namespace obs {

/// rt::obs v2 — the "over time" half of the observability layer:
///
///   * SloEngine — declarative latency/error objectives per traffic
///     class, evaluated over multi-window rolling rings (1m/10m/1h)
///     with burn-rate computation. Fast burn degrades /v1/healthz.
///   * MetricsHistory — a fixed-size on-box time-series ring that
///     snapshots every flat counter/gauge at a configurable cadence
///     and serves windowed rollups (GET /v1/metrics/history).
///   * SlowTraceArchive — tail-sampled trace retention: completed
///     traces matching a promotion policy (deadline, preempt, shed,
///     5xx, slower than the class p99 estimate) are copied out of the
///     span ring into a bounded archive (GET /v1/debug/slow) before
///     the ring overwrites the evidence.
///
/// The HTTP layer drives all three through OnRequestComplete(); the
/// generate handler annotates requests via thread-locals so only real
/// generation traffic feeds the objectives (a /v1/metrics scrape never
/// burns the interactive latency budget).

// ---------------------------------------------------------------------------
// SLO engine

/// One traffic class's service-level objectives. The latency objective
/// reads "quantile `latency_quantile` of requests completes within
/// `latency_target_ms`" — i.e. at most (1 - latency_quantile) of
/// requests may be slower. The error objective caps the 5xx ratio.
struct SloObjective {
  /// 0 = interactive, 1 = batch (mirrors serve::TrafficClass without
  /// the util layer depending on rt::serve).
  int traffic_class = 0;
  double latency_target_ms = 2000.0;
  double latency_quantile = 0.99;
  double max_error_ratio = 0.01;
  /// Burn rate on the shortest window at/above which the class is
  /// "fast burning" (the classic 14.4 = exhausting a 30-day budget in
  /// ~2 days page threshold, rounded).
  double fast_burn_threshold = 14.0;
  /// Minimum requests in the shortest window before fast burn can
  /// trip — a single failed request in an idle second is not a page.
  long long min_samples = 12;
};

/// Stable lowercase class name for metric keys ("interactive"/"batch").
const char* SloClassName(int traffic_class);

/// Burn rate = (bad / total) / allowed_ratio: 1.0 means consuming the
/// error budget exactly as fast as the objective allows, >1 means the
/// budget runs out early. 0 when the window is empty or the objective
/// allows everything.
double SloBurnRate(long long total, long long bad, double allowed_ratio);

/// Rolling multi-window SLO evaluation. Recording is mutex-protected
/// (one lock per completed request — noise next to a model forward);
/// evaluation walks a ring of per-second buckets, so reads are O(ring)
/// and only happen on metrics renders and healthz probes.
class SloEngine {
 public:
  static constexpr int kNumWindows = 3;
  /// Window lengths in seconds: 1m / 10m / 1h (the longest one sizes
  /// the ring).
  static const int kWindowSeconds[kNumWindows];
  static const char* const kWindowNames[kNumWindows];

  static SloEngine& Instance();

  SloEngine();

  /// Replaces the objectives and clears all recorded samples. Classes
  /// not listed keep defaults. Thread-safe, but meant for startup.
  void Configure(const std::vector<SloObjective>& objectives);
  void Reset();
  SloObjective objective(int traffic_class) const;

  /// Records one completed request: `error` marks a 5xx (or shed)
  /// outcome; latency feeds both the window rings and the cumulative
  /// class histogram behind the p99 estimate.
  void RecordRequest(int traffic_class, long long latency_ns, bool error);
  /// Deterministic variant pinning the ring second (tests).
  void RecordRequestAt(int traffic_class, long long epoch_s,
                       long long latency_ns, bool error);

  struct WindowCounts {
    long long total = 0;
    long long slow = 0;
    long long errors = 0;
  };
  struct ClassStatus {
    WindowCounts windows[kNumWindows];
    double latency_burn[kNumWindows] = {};
    double error_burn[kNumWindows] = {};
    bool fast_burn = false;
    /// Conservative class p99 estimate (bucket upper bound) in ms, from
    /// the cumulative class latency histogram; 0 before any sample.
    double p99_estimate_ms = 0.0;
  };

  ClassStatus Evaluate(int traffic_class) const;
  /// Deterministic variant pinning "now" to `now_epoch_s` (tests).
  ClassStatus EvaluateAt(int traffic_class, long long now_epoch_s) const;

  /// True when any class is fast-burning — /v1/healthz reports
  /// "degraded" (still HTTP 200; the process serves, the SLO suffers).
  bool AnyFastBurn() const;

  /// Adds the flat `slo_*` gauges to `object`: per class and window the
  /// raw counts (slo_<class>_<window>_{total,slow,errors}) plus burn
  /// rates, targets, fast_burn flags, the p99 estimate, and a global
  /// slo_fast_burn. Raw counts are exported (not just ratios) so the
  /// router can sum them across replicas and recompute fleet burns.
  void FillMetrics(Json* object) const;

  /// Class p99 latency estimate in milliseconds (0 = no data yet) —
  /// the slow-trace promotion threshold.
  double P99EstimateMs(int traffic_class) const;

  static constexpr int kNumClasses = 2;

 private:
  struct SecondBucket {
    long long epoch = -1;  // uptime second this bucket counts, -1 = unused
    long long total = 0;
    long long slow = 0;
    long long errors = 0;
  };
  struct ClassState {
    SloObjective objective;
    std::vector<SecondBucket> ring;  // kWindowSeconds[kNumWindows-1] slots
    StageHistogram latency;
  };

  void ResetLocked();
  ClassStatus EvaluateLocked(int traffic_class, long long now_epoch_s) const;

  mutable std::mutex mutex_;
  ClassState classes_[kNumClasses];
};

/// Fleet aggregation: sums the raw per-window `slo_*` counts found in
/// each replica's /v1/metrics JSON and recomputes burn rates with the
/// objectives echoed by the first replica that reports them, writing
/// the same flat `slo_*` key shape (prefixed `fleet_`) into `out`.
/// Pure JSON-level so the router logic is testable without HTTP.
void AggregateSloMetrics(const std::vector<Json>& replica_metrics,
                         Json* out);

/// True when the aggregated fleet view reports any fast-burning class
/// (reads the `fleet_slo_fast_burn` key written by AggregateSloMetrics).
bool FleetFastBurn(const Json& aggregated);

/// Merges every `<prefix>*latency_bucket_le/_count` histogram family in
/// `src` into `dst` (summing bucket counts and seconds_total, maxing
/// seconds_max, recomputing seconds_mean). Families missing from `dst`
/// are copied. The router uses this to fold per-replica `stage_*`
/// histograms into fleet-wide ones.
void MergeHistogramFamilies(Json* dst, const Json& src,
                            const std::string& prefix);

// ---------------------------------------------------------------------------
// Metrics history

/// Fixed-size time-series ring over the flat numeric fields of a
/// metrics snapshot. The key schema is frozen at the first sample, and
/// every later sample writes into preallocated rows — zero heap per
/// sample after warmup. Serves windowed rollups for
/// GET /v1/metrics/history?window=<seconds>[&key=<flat key>].
class MetricsHistory {
 public:
  struct Options {
    /// Ring capacity in samples (default 360 x 10s = 1h on box).
    int capacity = 360;
    /// Sampler cadence; also the flight-recorder heartbeat cadence.
    int interval_ms = 10000;
  };

  MetricsHistory();
  ~MetricsHistory();

  /// Sets the ring shape and the snapshot source (typically the
  /// service's MetricsJson). Must be called before Start/SampleNow.
  void Configure(const Options& options,
                 std::function<Json()> sampler);

  /// Starts/stops the background sampler thread. Start is a no-op
  /// without Configure or when already running.
  void Start();
  void Stop();

  /// Takes one snapshot synchronously (the thread calls this; tests
  /// call it directly for determinism).
  void SampleNow();

  int samples() const;
  int capacity() const;
  int interval_ms() const;

  /// Rollup over the trailing `window_s` seconds (<= 0 = whole ring):
  /// {"window_s","interval_ms","samples","span_s",
  ///  "series":{<key>:{"first","last","min","max","delta"}}} and, when
  /// `key` is non-empty, a "points" array of [uptime_s, value] pairs
  /// for that key only (series is then restricted to it too).
  Json Rollup(double window_s, const std::string& key) const;

  /// Parses an HTTP query string "window=<seconds>[&key=<flat key>]"
  /// (any order, unknown params ignored, bare or url-style) and
  /// answers Rollup() — shared by the backend and router endpoints so
  /// the query grammar cannot drift.
  Json RollupForQuery(const std::string& query) const;

 private:
  void SamplerLoop();
  /// Flattens the numeric fields of `value` depth-first into key_buf_/
  /// scratch order; on the first call it freezes keys_.
  void Flatten(const Json& value, std::string* key_buf,
               std::vector<double>* row, size_t* cursor, bool first);

  mutable std::mutex mutex_;
  Options options_;
  std::function<Json()> sampler_;
  std::vector<std::string> keys_;     // frozen at first sample
  std::vector<double> times_;         // ring: uptime seconds per sample
  std::vector<double> values_;        // ring: capacity x keys_.size()
  int head_ = 0;                      // next slot to write
  int count_ = 0;                     // valid samples (<= capacity)
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

// ---------------------------------------------------------------------------
// Tail-sampled trace retention

/// Why a completed trace was promoted into the slow-trace archive.
enum class PromoteReason : int {
  kNone = 0,
  kDeadlineExceeded,
  kPreempted,
  kShed,
  kError5xx,
  kSlow,  ///< duration above the class p99 estimate
};
const char* PromoteReasonName(PromoteReason reason);

/// Bounded archive of traces worth keeping. Promotion copies the
/// trace's spans out of the live ring (before wrap-around destroys
/// them) together with outcome metadata; the archive evicts oldest
/// first. Export is Chrome trace_event format (same shape as
/// /v1/trace) plus a "slow_traces" summary with per-stage budget
/// attribution — which stage consumed the deadline.
class SlowTraceArchive {
 public:
  static constexpr int kDefaultCapacity = 32;

  static SlowTraceArchive& Instance();

  void SetCapacity(int capacity);
  void Clear();

  /// Promotes `trace_id` (spans collected from the live ring; may be
  /// empty when tracing is disabled — the summary entry still lands).
  void Promote(uint64_t trace_id, const std::string& request_id,
               PromoteReason reason, int traffic_class, int status,
               long long duration_ns);

  int size() const;
  long long promoted_total() const;
  long long evicted_total() const;

  /// {"traceEvents":[...], "displayTimeUnit":"ms",
  ///  "slow_traces":[{trace_id,request_id,reason,traffic_class,status,
  ///    duration_ms,captured_uptime_s,stages_ms:{...},
  ///    budget_fraction:{...}}],
  ///  "archived","promoted_total","evicted_total"}.
  Json ExportChromeJson() const;

  /// Adds "slow_traces_archived", "slow_traces_promoted_total",
  /// "slow_traces_evicted_total" to `object`.
  void FillMetrics(Json* object) const;

 private:
  struct Retained {
    uint64_t trace_id = 0;
    std::string request_id;
    PromoteReason reason = PromoteReason::kNone;
    int traffic_class = 0;
    int status = 0;
    long long duration_ns = 0;
    double captured_uptime_s = 0.0;
    std::vector<SpanCopy> spans;
  };

  mutable std::mutex mutex_;
  int capacity_ = kDefaultCapacity;
  std::deque<Retained> retained_;
  long long promoted_ = 0;
  long long evicted_ = 0;
};

// ---------------------------------------------------------------------------
// Request-outcome hook (HTTP layer -> SLO engine + archive)

/// Handler-side annotations, stored thread-local so they survive from
/// the generate handler into the HTTP layer's completion hook on the
/// same worker thread. Cleared by OnRequestComplete.
void AnnotateRequestClass(int traffic_class);
void AnnotateRequestReason(PromoteReason reason);

/// Called by the HTTP server once per completed exchange, after the
/// root request span is recorded. Consumes the thread-local
/// annotations: annotated (generate) requests feed the SLO engine;
/// traces matching the promotion policy (explicit reason, 5xx status,
/// 504, or slower than the class p99 estimate) enter the archive.
void OnRequestComplete(uint64_t trace_id, const std::string& request_id,
                       int status, long long duration_ns);

/// Called when the HTTP layer sheds a queued connection before any
/// handler ran (no trace exists): counts an interactive-class error
/// sample against the SLO.
void OnRequestShed(long long waited_ns);

}  // namespace obs
}  // namespace rt

#endif  // RATATOUILLE_UTIL_SLO_H_
