#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rt {
namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos;
    return true;
  }

  bool Fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(out);
    }
    return Fail("unexpected character");
  }

  bool Literal(const char* lit) {
    size_t len = 0;
    while (lit[len]) ++len;
    if (text.compare(pos, len, lit) != 0) return Fail("bad literal");
    pos += len;
    return true;
  }

  bool ParseNull(Json* out) {
    if (!Literal("null")) return false;
    *out = Json();
    return true;
  }

  bool ParseBool(Json* out) {
    if (Peek() == 't') {
      if (!Literal("true")) return false;
      *out = Json(true);
    } else {
      if (!Literal("false")) return false;
      *out = Json(false);
    }
    return true;
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos;
    if (Consume('-')) {
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos;
    }
    const std::string num = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0' || !std::isfinite(v)) {
      return Fail("bad number");
    }
    *out = Json(v);
    return true;
  }

  bool ParseStringInto(std::string* s) {
    if (!Consume('"')) return Fail("expected '\"'");
    s->clear();
    while (!AtEnd()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (AtEnd()) return Fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': *s += '"'; break;
          case '\\': *s += '\\'; break;
          case '/': *s += '/'; break;
          case 'b': *s += '\b'; break;
          case 'f': *s += '\f'; break;
          case 'n': *s += '\n'; break;
          case 'r': *s += '\r'; break;
          case 't': *s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u digit");
              }
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              *s += static_cast<char>(code);
            } else if (code < 0x800) {
              *s += static_cast<char>(0xC0 | (code >> 6));
              *s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *s += static_cast<char>(0xE0 | (code >> 12));
              *s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        *s += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseString(Json* out) {
    std::string s;
    if (!ParseStringInto(&s)) return false;
    *out = Json(std::move(s));
    return true;
  }

  bool ParseArray(Json* out, int depth) {
    Consume('[');
    Json::Array arr;
    SkipWs();
    if (Consume(']')) {
      *out = Json(std::move(arr));
      return true;
    }
    for (;;) {
      Json v;
      if (!ParseValue(&v, depth + 1)) return false;
      arr.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) break;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
    *out = Json(std::move(arr));
    return true;
  }

  bool ParseObject(Json* out, int depth) {
    Consume('{');
    Json::Object obj;
    SkipWs();
    if (Consume('}')) {
      *out = Json(std::move(obj));
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseStringInto(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      Json v;
      if (!ParseValue(&v, depth + 1)) return false;
      obj[std::move(key)] = std::move(v);
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
    *out = Json(std::move(obj));
    return true;
  }
};

void EscapeInto(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void DumpNumber(double v, std::string* out) {
  // Integers print without a decimal point.
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    *out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

bool Json::AsBool() const {
  assert(is_bool());
  return bool_;
}

double Json::AsNumber() const {
  assert(is_number());
  return number_;
}

const std::string& Json::AsString() const {
  assert(is_string());
  return string_;
}

const Json::Array& Json::AsArray() const {
  assert(is_array());
  return array_;
}

const Json::Object& Json::AsObject() const {
  assert(is_object());
  return object_;
}

const Json& Json::Get(const std::string& key) const {
  static const Json& null_json = *new Json();
  if (!is_object()) return null_json;
  auto it = object_.find(key);
  return it == object_.end() ? null_json : it->second;
}

Json& Json::Set(const std::string& key, Json value) {
  if (!is_object()) {
    *this = Json(Object{});
  }
  object_[key] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  if (!is_array()) {
    *this = Json(Array{});
  }
  array_.push_back(std::move(value));
  return *this;
}

std::string Json::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      DumpNumber(number_, &out);
      break;
    case Type::kString:
      EscapeInto(string_, &out);
      break;
    case Type::kArray: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].Dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        EscapeInto(key, &out);
        out += ':';
        out += value.Dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.ParseValue(&out, 0)) {
    return Status::InvalidArgument("JSON parse error: " + p.error);
  }
  p.SkipWs();
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing characters after JSON value");
  }
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace rt
