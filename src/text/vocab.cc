#include "text/vocab.h"

#include <cassert>
#include <fstream>
#include <sstream>

#include "util/fault_injection.h"

namespace rt {

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::GetId(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& Vocab::GetToken(int id) const {
  assert(id >= 0 && id < size());
  return tokens_[id];
}

namespace {

// Tokens may contain newlines (e.g. char-level vocabularies), so the
// one-token-per-line format escapes backslash and newline.
std::string EscapeToken(const std::string& t) {
  std::string out;
  for (char c : t) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeToken(const std::string& t) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == '\\' && i + 1 < t.size()) {
      ++i;
      out += t[i] == 'n' ? '\n' : t[i];
    } else {
      out += t[i];
    }
  }
  return out;
}

}  // namespace

std::string Vocab::Serialize() const {
  std::string out;
  for (const std::string& t : tokens_) {
    out += EscapeToken(t);
    out += '\n';
  }
  return out;
}

StatusOr<Vocab> Vocab::Deserialize(const std::string& text) {
  Vocab v;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string token = UnescapeToken(line);
    if (v.Contains(token)) {
      return Status::InvalidArgument("duplicate token in vocab: " + line);
    }
    v.AddToken(token);
  }
  return v;
}

Status Vocab::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << Serialize();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<Vocab> Vocab::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (FaultInjector::Instance().Hit("tokenizer.vocab.corrupt")) {
    // Injected corruption: duplicate the first entry, the way a torn
    // write or bad sector yields a structurally plausible but invalid
    // file. Deserialize must answer InvalidArgument, not crash.
    const size_t first_line = text.find('\n');
    if (first_line != std::string::npos) {
      text.insert(0, text.substr(0, first_line + 1));
    }
  }
  return Deserialize(text);
}

}  // namespace rt
