#ifndef RATATOUILLE_TEXT_WORD_TOKENIZER_H_
#define RATATOUILLE_TEXT_WORD_TOKENIZER_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace rt {

/// Word-level tokenizer (paper Sec. IV-A, word-level LSTM).
///
/// Pre-tokenization splits on whitespace and isolates punctuation; the
/// structural tags and fraction tokens are single words in the tagged
/// corpus format and are always in-vocabulary. Words seen fewer than
/// `min_count` times map to <UNK>.
class WordTokenizer : public Tokenizer {
 public:
  /// Builds the vocabulary from the corpus. Words are admitted when they
  /// occur at least `min_count` times; insertion order is by descending
  /// frequency (ties broken lexicographically) so ids are deterministic.
  static WordTokenizer Build(const std::vector<std::string>& corpus,
                             int min_count = 1);

  /// Splits text into word pre-tokens (shared with the BPE tokenizer).
  static std::vector<std::string> PreTokenize(const std::string& text);

  std::vector<int> Encode(const std::string& text) const override;
  std::string Decode(const std::vector<int>& ids) const override;
  std::string name() const override { return "word"; }
  const Vocab& vocab() const override { return vocab_; }

 private:
  WordTokenizer() = default;

  Vocab vocab_;
};

}  // namespace rt

#endif  // RATATOUILLE_TEXT_WORD_TOKENIZER_H_
