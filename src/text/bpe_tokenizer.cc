#include "text/bpe_tokenizer.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "text/special_tokens.h"
#include "text/word_tokenizer.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace rt {
namespace {

constexpr const char* kEndOfWord = "</w>";

using Pair = std::pair<std::string, std::string>;

std::vector<std::string> WordToSymbols(const std::string& word) {
  std::vector<std::string> symbols;
  symbols.reserve(word.size() + 1);
  for (char c : word) symbols.emplace_back(1, c);
  symbols.emplace_back(kEndOfWord);
  return symbols;
}

void MergePairInPlace(std::vector<std::string>* symbols, const Pair& pair) {
  std::vector<std::string> merged;
  merged.reserve(symbols->size());
  size_t i = 0;
  while (i < symbols->size()) {
    if (i + 1 < symbols->size() && (*symbols)[i] == pair.first &&
        (*symbols)[i + 1] == pair.second) {
      merged.push_back(pair.first + pair.second);
      i += 2;
    } else {
      merged.push_back((*symbols)[i]);
      ++i;
    }
  }
  *symbols = std::move(merged);
}

}  // namespace

BpeTokenizer BpeTokenizer::Train(const std::vector<std::string>& corpus,
                                 int vocab_budget) {
  BpeTokenizer t;
  for (const auto& tok : ReservedTokens()) t.vocab_.AddToken(tok);
  t.vocab_.AddToken(kEndOfWord);

  // Word frequency table over non-reserved pre-tokens.
  std::map<std::string, long long> word_counts;
  for (const std::string& doc : corpus) {
    for (const std::string& w : WordTokenizer::PreTokenize(doc)) {
      if (StartsWith(w, "<") && EndsWith(w, ">")) continue;
      ++word_counts[w];
    }
  }

  // Seed single-character symbols (sorted => deterministic ids).
  std::set<char> chars;
  for (const auto& [word, count] : word_counts) {
    for (char c : word) chars.insert(c);
  }
  for (char c : chars) t.vocab_.AddToken(std::string(1, c));

  // Working segmentation of each distinct word.
  std::vector<std::pair<std::vector<std::string>, long long>> words;
  words.reserve(word_counts.size());
  for (const auto& [word, count] : word_counts) {
    words.emplace_back(WordToSymbols(word), count);
  }

  while (t.vocab_.size() < vocab_budget) {
    // Count adjacent pairs (ordered map => deterministic tie-break on the
    // lexicographically smallest pair).
    std::map<Pair, long long> pair_counts;
    for (const auto& [symbols, count] : words) {
      for (size_t i = 0; i + 1 < symbols.size(); ++i) {
        pair_counts[{symbols[i], symbols[i + 1]}] += count;
      }
    }
    Pair best;
    long long best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;

    t.merge_rank_.emplace(best,
                          static_cast<int>(t.merge_rank_.size()));
    t.vocab_.AddToken(best.first + best.second);
    for (auto& [symbols, count] : words) {
      MergePairInPlace(&symbols, best);
    }
  }
  return t;
}

std::vector<std::string> BpeTokenizer::SegmentWord(
    const std::string& word) const {
  std::vector<std::string> symbols = WordToSymbols(word);
  // Repeatedly apply the lowest-rank applicable merge.
  for (;;) {
    int best_rank = -1;
    Pair best;
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = merge_rank_.find({symbols[i], symbols[i + 1]});
      if (it != merge_rank_.end() &&
          (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
        best = it->first;
      }
    }
    if (best_rank < 0) break;
    MergePairInPlace(&symbols, best);
  }
  return symbols;
}

std::vector<int> BpeTokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  for (const std::string& w : WordTokenizer::PreTokenize(text)) {
    if (StartsWith(w, "<") && EndsWith(w, ">")) {
      int id = vocab_.GetId(w);
      ids.push_back(id >= 0 ? id : unk_id());
      continue;
    }
    auto it = cache_.find(w);
    if (it == cache_.end()) {
      std::vector<int> word_ids;
      for (const std::string& s : SegmentWord(w)) {
        int id = vocab_.GetId(s);
        word_ids.push_back(id >= 0 ? id : unk_id());
      }
      it = cache_.emplace(w, std::move(word_ids)).first;
    }
    ids.insert(ids.end(), it->second.begin(), it->second.end());
  }
  return ids;
}

std::string BpeTokenizer::Serialize() const {
  // Header, vocab block (escaped, from Vocab::Serialize), then merges in
  // rank order. BPE symbols never contain whitespace, so tab-separated
  // pairs are unambiguous.
  std::string out = "RTBPE1\n";
  out += std::to_string(vocab_.size());
  out += '\n';
  out += vocab_.Serialize();
  std::vector<Pair> by_rank(merge_rank_.size());
  for (const auto& [pair, rank] : merge_rank_) by_rank[rank] = pair;
  out += std::to_string(by_rank.size());
  out += '\n';
  for (const Pair& pair : by_rank) {
    out += pair.first;
    out += '\t';
    out += pair.second;
    out += '\n';
  }
  return out;
}

StatusOr<BpeTokenizer> BpeTokenizer::Deserialize(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n', /*keep_empty=*/true);
  size_t i = 0;
  auto next_line = [&]() -> const std::string* {
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  const std::string* header = next_line();
  if (header == nullptr || *header != "RTBPE1") {
    return Status::InvalidArgument("bad BPE header");
  }
  const std::string* count_line = next_line();
  if (count_line == nullptr) return Status::InvalidArgument("truncated");
  const int vocab_count = std::atoi(count_line->c_str());
  if (vocab_count <= 0) return Status::InvalidArgument("bad vocab count");
  std::string vocab_blob;
  for (int v = 0; v < vocab_count; ++v) {
    const std::string* line = next_line();
    if (line == nullptr) return Status::InvalidArgument("truncated vocab");
    vocab_blob += *line;
    vocab_blob += '\n';
  }
  BpeTokenizer t;
  RT_ASSIGN_OR_RETURN(t.vocab_, Vocab::Deserialize(vocab_blob));
  const std::string* merge_count_line = next_line();
  if (merge_count_line == nullptr) {
    return Status::InvalidArgument("missing merge count");
  }
  const int merge_count = std::atoi(merge_count_line->c_str());
  for (int m = 0; m < merge_count; ++m) {
    const std::string* line = next_line();
    if (line == nullptr) return Status::InvalidArgument("truncated merges");
    const size_t tab = line->find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("bad merge line: " + *line);
    }
    t.merge_rank_.emplace(
        Pair{line->substr(0, tab), line->substr(tab + 1)}, m);
  }
  return t;
}

Status BpeTokenizer::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << Serialize();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<BpeTokenizer> BpeTokenizer::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (FaultInjector::Instance().Hit("tokenizer.vocab.corrupt")) {
    // Injected corruption: mangle the magic header so Deserialize
    // answers its structured InvalidArgument instead of decoding junk.
    if (!text.empty()) text[0] = '#';
  }
  return Deserialize(text);
}

std::string BpeTokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  bool at_word_start = true;
  for (int id : ids) {
    if (id < 0 || id >= vocab_.size() || id == pad_id()) continue;
    const std::string& tok = vocab_.GetToken(id);
    if (tok == kEndOfWord) {
      at_word_start = true;
      continue;
    }
    if (StartsWith(tok, "<") && EndsWith(tok, ">")) {
      if (!out.empty() && out.back() != ' ') out += ' ';
      out += tok;
      out += ' ';
      at_word_start = true;
      continue;
    }
    if (at_word_start && !out.empty() && out.back() != ' ') out += ' ';
    at_word_start = false;
    // Subwords may themselves end with the end-of-word marker when it was
    // merged into a larger symbol.
    if (EndsWith(tok, kEndOfWord)) {
      out += tok.substr(0, tok.size() - 4);
      at_word_start = true;
    } else {
      out += tok;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace rt
