#ifndef RATATOUILLE_TEXT_CHAR_TOKENIZER_H_
#define RATATOUILLE_TEXT_CHAR_TOKENIZER_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace rt {

/// Character-level tokenizer (paper Sec. IV-A, char-level LSTM).
///
/// Every byte of the corpus becomes a token, except the reserved
/// structural/fraction tags, which are kept as single tokens so the tagged
/// recipe format stays parseable at the character level too. The
/// vocabulary is the reserved tokens followed by the sorted set of
/// distinct characters seen during Build().
class CharTokenizer : public Tokenizer {
 public:
  /// Builds the vocabulary from the corpus (deterministic).
  static CharTokenizer Build(const std::vector<std::string>& corpus);

  std::vector<int> Encode(const std::string& text) const override;
  std::string Decode(const std::vector<int>& ids) const override;
  std::string name() const override { return "char"; }
  const Vocab& vocab() const override { return vocab_; }

 private:
  CharTokenizer() = default;

  Vocab vocab_;
};

}  // namespace rt

#endif  // RATATOUILLE_TEXT_CHAR_TOKENIZER_H_
