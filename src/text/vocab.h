#ifndef RATATOUILLE_TEXT_VOCAB_H_
#define RATATOUILLE_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace rt {

/// Bidirectional token <-> id mapping.
///
/// Ids are dense and assigned in insertion order, so a vocabulary built
/// deterministically (sorted or frequency-ordered insertion) is identical
/// across runs. Id 0 is conventionally reserved by callers for <PAD> or
/// <UNK>; Vocab itself imposes no convention.
class Vocab {
 public:
  Vocab() = default;

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of `token`, or -1 if unknown.
  int GetId(const std::string& token) const;

  /// True if the token is present.
  bool Contains(const std::string& token) const {
    return GetId(token) >= 0;
  }

  /// Token for `id`. Precondition: 0 <= id < size().
  const std::string& GetToken(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  /// All tokens in id order.
  const std::vector<std::string>& tokens() const { return tokens_; }

  /// Serializes one token per line (tokens must not contain '\n').
  std::string Serialize() const;

  /// Rebuilds a vocab from Serialize() output.
  static StatusOr<Vocab> Deserialize(const std::string& text);

  /// Writes/reads the serialized form to/from a file.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<Vocab> LoadFromFile(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace rt

#endif  // RATATOUILLE_TEXT_VOCAB_H_
