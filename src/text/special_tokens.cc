#include "text/special_tokens.h"

#include <array>

#include "util/strings.h"

namespace rt {
namespace {

struct FractionEntry {
  const char* text;   // literal as it appears in recipes
  const char* token;  // replacement special token
};

// Ordered longest-first so "1/16" is matched before "1/1..." prefixes
// could interfere; entries are disjoint anyway but order is part of the
// deterministic contract.
constexpr std::array<FractionEntry, 10> kFractions = {{
    {"1/16", "<FRAC_1_16>"},
    {"1/2", "<FRAC_1_2>"},
    {"1/3", "<FRAC_1_3>"},
    {"2/3", "<FRAC_2_3>"},
    {"1/4", "<FRAC_1_4>"},
    {"3/4", "<FRAC_3_4>"},
    {"1/8", "<FRAC_1_8>"},
    {"3/8", "<FRAC_3_8>"},
    {"5/8", "<FRAC_5_8>"},
    {"7/8", "<FRAC_7_8>"},
}};

}  // namespace

const std::vector<std::string>& StructuralTags() {
  static const std::vector<std::string>& tags = *new std::vector<std::string>{
      kRecipeStart, kRecipeEnd,  kTitleStart, kTitleEnd, kIngrStart,
      kIngrNext,    kIngrEnd,    kInstrStart, kInstrNext, kInstrEnd,
      kInputStart,  kInputNext,  kInputEnd,
  };
  return tags;
}

const std::vector<std::string>& ReservedTokens() {
  static const std::vector<std::string>& tokens =
      *new std::vector<std::string>([] {
        std::vector<std::string> v{kPadToken, kUnkToken};
        for (const auto& t : StructuralTags()) v.push_back(t);
        for (const auto& f : kFractions) v.push_back(f.token);
        return v;
      }());
  return tokens;
}

std::string NormalizeFractions(const std::string& text) {
  std::string out = text;
  for (const auto& f : kFractions) {
    out = ReplaceAll(out, f.text, f.token);
  }
  return out;
}

std::string DenormalizeFractions(const std::string& text) {
  std::string out = text;
  for (const auto& f : kFractions) {
    out = ReplaceAll(out, f.token, f.text);
  }
  return out;
}

bool IsStructuralTag(const std::string& token) {
  for (const auto& t : StructuralTags()) {
    if (t == token) return true;
  }
  return false;
}

bool IsFractionToken(const std::string& token) {
  for (const auto& f : kFractions) {
    if (f.token == token) return true;
  }
  return false;
}

}  // namespace rt
