#ifndef RATATOUILLE_TEXT_SPECIAL_TOKENS_H_
#define RATATOUILLE_TEXT_SPECIAL_TOKENS_H_

#include <string>
#include <vector>

namespace rt {

// Structural tags that delimit the sections of a tagged recipe string
// (paper Fig. 3). The dataset serializer emits them and the generation
// parser consumes them; tokenizers keep each tag as a single token.
inline constexpr const char* kRecipeStart = "<RECIPE_START>";
inline constexpr const char* kRecipeEnd = "<RECIPE_END>";
inline constexpr const char* kTitleStart = "<TITLE_START>";
inline constexpr const char* kTitleEnd = "<TITLE_END>";
inline constexpr const char* kIngrStart = "<INGR_START>";
inline constexpr const char* kIngrNext = "<INGR_NEXT>";
inline constexpr const char* kIngrEnd = "<INGR_END>";
inline constexpr const char* kInstrStart = "<INSTR_START>";
inline constexpr const char* kInstrNext = "<INSTR_NEXT>";
inline constexpr const char* kInstrEnd = "<INSTR_END>";
inline constexpr const char* kInputStart = "<INPUT_START>";
inline constexpr const char* kInputNext = "<INPUT_NEXT>";
inline constexpr const char* kInputEnd = "<INPUT_END>";

// Reserved vocabulary tokens.
inline constexpr const char* kPadToken = "<PAD>";
inline constexpr const char* kUnkToken = "<UNK>";

/// All structural tags in a fixed, deterministic order.
const std::vector<std::string>& StructuralTags();

/// All reserved tokens (pad/unk + structural tags + fraction tokens) in a
/// fixed order; tokenizers insert these first so their ids are stable.
const std::vector<std::string>& ReservedTokens();

/// Replaces common cooking fractions ("1/2", "3/4", ...) with dedicated
/// tokens ("<FRAC_1_2>"), so quantity fractions survive word tokenization
/// as single units (paper Sec. II: "used special tokens to account the
/// fractions and numbers").
std::string NormalizeFractions(const std::string& text);

/// Inverse of NormalizeFractions.
std::string DenormalizeFractions(const std::string& text);

/// True if `token` is one of the structural tags.
bool IsStructuralTag(const std::string& token);

/// True if `token` is a fraction token like "<FRAC_1_2>".
bool IsFractionToken(const std::string& token);

}  // namespace rt

#endif  // RATATOUILLE_TEXT_SPECIAL_TOKENS_H_
