#include "text/word_tokenizer.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "text/special_tokens.h"

namespace rt {
namespace {

bool IsPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> WordTokenizer::PreTokenize(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Reserved tags (and anything shaped like <...>) stay atomic.
    if (c == '<') {
      size_t close = text.find('>', i);
      if (close != std::string::npos) {
        out.push_back(text.substr(i, close - i + 1));
        i = close + 1;
        continue;
      }
    }
    if (IsPunct(c)) {
      out.push_back(std::string(1, c));
      ++i;
      continue;
    }
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i])) &&
           !IsPunct(text[i]) && text[i] != '<') {
      ++i;
    }
    out.push_back(text.substr(start, i - start));
  }
  return out;
}

WordTokenizer WordTokenizer::Build(const std::vector<std::string>& corpus,
                                   int min_count) {
  WordTokenizer t;
  for (const auto& tok : ReservedTokens()) t.vocab_.AddToken(tok);

  std::map<std::string, long long> counts;  // ordered => deterministic ties
  for (const std::string& doc : corpus) {
    for (const std::string& w : PreTokenize(doc)) ++counts[w];
  }
  std::vector<std::pair<std::string, long long>> by_freq(counts.begin(),
                                                         counts.end());
  std::stable_sort(by_freq.begin(), by_freq.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  for (const auto& [word, count] : by_freq) {
    if (count < min_count) continue;
    t.vocab_.AddToken(word);  // no-op for reserved tokens already present
  }
  return t;
}

std::vector<int> WordTokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  for (const std::string& w : PreTokenize(text)) {
    int id = vocab_.GetId(w);
    ids.push_back(id >= 0 ? id : unk_id());
  }
  return ids;
}

std::string WordTokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    if (id < 0 || id >= vocab_.size() || id == pad_id()) continue;
    if (!out.empty()) out += ' ';
    out += vocab_.GetToken(id);
  }
  return out;
}

}  // namespace rt
