#include "text/char_tokenizer.h"

#include <set>

#include "text/special_tokens.h"
#include "util/strings.h"

namespace rt {

CharTokenizer CharTokenizer::Build(const std::vector<std::string>& corpus) {
  CharTokenizer t;
  for (const auto& tok : ReservedTokens()) t.vocab_.AddToken(tok);
  std::set<char> chars;
  for (const std::string& doc : corpus) {
    for (char c : doc) chars.insert(c);
  }
  for (char c : chars) t.vocab_.AddToken(std::string(1, c));
  return t;
}

std::vector<int> CharTokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  ids.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    // Reserved tags stay atomic even at the character level.
    if (text[i] == '<') {
      bool matched = false;
      for (const auto& tag : ReservedTokens()) {
        if (text.compare(i, tag.size(), tag) == 0) {
          ids.push_back(vocab_.GetId(tag));
          i += tag.size();
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    int id = vocab_.GetId(std::string(1, text[i]));
    ids.push_back(id >= 0 ? id : unk_id());
    ++i;
  }
  return ids;
}

std::string CharTokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    if (id < 0 || id >= vocab_.size() || id == pad_id()) continue;
    out += vocab_.GetToken(id);
  }
  return out;
}

}  // namespace rt
