#ifndef RATATOUILLE_TEXT_TOKENIZER_H_
#define RATATOUILLE_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace rt {

/// Interface shared by the character, word and BPE tokenizers.
///
/// Tokenizers are built once from a training corpus (deterministically) and
/// are immutable afterwards; Encode/Decode are const and thread-compatible.
/// Every tokenizer reserves id 0 for <PAD> and id 1 for <UNK> and keeps the
/// structural recipe tags and fraction tokens as single tokens.
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Token ids for `text`. Unknown symbols map to unk_id().
  virtual std::vector<int> Encode(const std::string& text) const = 0;

  /// Text for `ids`; inverse of Encode up to unknown-token loss and
  /// whitespace normalization (exact guarantees vary per tokenizer).
  virtual std::string Decode(const std::vector<int>& ids) const = 0;

  /// Short identifier, e.g. "char", "word", "bpe".
  virtual std::string name() const = 0;

  virtual const Vocab& vocab() const = 0;

  int vocab_size() const { return vocab().size(); }
  int pad_id() const { return 0; }
  int unk_id() const { return 1; }
};

}  // namespace rt

#endif  // RATATOUILLE_TEXT_TOKENIZER_H_
