#ifndef RATATOUILLE_TEXT_BPE_TOKENIZER_H_
#define RATATOUILLE_TEXT_BPE_TOKENIZER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "text/tokenizer.h"

namespace rt {

/// Trainable byte-pair-encoding tokenizer, the subword scheme GPT-2 uses
/// (paper Sec. IV-B). Merges are learned greedily from word frequencies:
/// each step fuses the most frequent adjacent symbol pair (lexicographic
/// tie-break => deterministic). Words end with the "</w>" marker so word
/// boundaries survive subword segmentation. Reserved structural/fraction
/// tags are atomic and never split.
class BpeTokenizer : public Tokenizer {
 public:
  /// Learns merges until the vocabulary reaches `vocab_budget` tokens or
  /// no pair occurs at least twice.
  static BpeTokenizer Train(const std::vector<std::string>& corpus,
                            int vocab_budget);

  std::vector<int> Encode(const std::string& text) const override;
  std::string Decode(const std::vector<int>& ids) const override;
  std::string name() const override { return "bpe"; }
  const Vocab& vocab() const override { return vocab_; }

  /// Number of learned merge rules.
  int num_merges() const { return static_cast<int>(merge_rank_.size()); }

  /// Subword segmentation of one word (for tests/inspection).
  std::vector<std::string> SegmentWord(const std::string& word) const;

  /// Serializes vocab + merge rules to a text blob / file, so a trained
  /// tokenizer can be shipped alongside model checkpoints.
  std::string Serialize() const;
  static StatusOr<BpeTokenizer> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<BpeTokenizer> LoadFromFile(const std::string& path);

 private:
  BpeTokenizer() = default;

  // rank of each learned pair; lower rank merges first.
  std::map<std::pair<std::string, std::string>, int> merge_rank_;
  Vocab vocab_;
  // Per-word segmentation cache. Encode() is logically const; the cache
  // makes repeated corpus encoding linear. Not thread-safe.
  mutable std::unordered_map<std::string, std::vector<int>> cache_;
};

}  // namespace rt

#endif  // RATATOUILLE_TEXT_BPE_TOKENIZER_H_
