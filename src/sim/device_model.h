#ifndef RATATOUILLE_SIM_DEVICE_MODEL_H_
#define RATATOUILLE_SIM_DEVICE_MODEL_H_

#include <cstddef>
#include <string>

namespace rt {

/// An execution device characterized by peak throughput and the fraction
/// of peak a small-batch language-model fine-tune actually achieves.
///
/// The paper reports "2-3 days on CPU" vs "around 16 hours" on an A100
/// for fine-tuning GPT-2 on RecipeDB (Sec. V). We cannot run an A100, so
/// experiment E4 reproduces the *ratio* analytically: total training
/// FLOPs from first principles (6 * params * tokens, the standard
/// transformer training estimate) divided by achieved device throughput,
/// with the local CPU core as a measured calibration anchor.
struct DeviceSpec {
  std::string name;
  double peak_flops = 0.0;   // FLOP/s
  double efficiency = 0.0;   // achieved fraction of peak on this workload

  double achieved_flops() const { return peak_flops * efficiency; }

  /// A 2019-class 32-core AVX-512 CPU server (the authors' "CPU"
  /// baseline): 32 cores x 2.5 GHz x 32 FLOP/cycle peak, ~30 % achieved
  /// on cache-friendly GEMMs.
  static DeviceSpec CpuServer();

  /// Nvidia A100: 312 TFLOP/s bf16 peak; ~1 % achieved for a small-batch
  /// HuggingFace fine-tune dominated by kernel launch and input pipeline
  /// overheads (the regime the paper describes).
  static DeviceSpec A100();

  /// One laptop-class CPU core; efficiency is a placeholder until
  /// Calibrate() replaces it with a measured value.
  static DeviceSpec SingleCore();
};

/// A training job's size.
struct TrainingWorkload {
  size_t param_count = 0;
  long long tokens_per_epoch = 0;
  int epochs = 1;

  /// Standard estimate: forward+backward costs ~6 FLOPs per parameter
  /// per token.
  double TotalFlops() const {
    return 6.0 * static_cast<double>(param_count) *
           static_cast<double>(tokens_per_epoch) * epochs;
  }
};

/// The RecipeDB-scale GPT-2-medium job the paper describes: 355 M
/// parameters, ~27 M tokens per epoch (118,171 recipes x ~230 tokens),
/// 3 epochs.
TrainingWorkload PaperGpt2MediumWorkload();

/// Projected wall-clock seconds for `workload` on `device`.
double ProjectSeconds(const TrainingWorkload& workload,
                      const DeviceSpec& device);

/// Builds a calibrated device from a measured training rate: achieved
/// throughput = 6 * params * tokens_per_second. `peak_flops` is set equal
/// to achieved (efficiency 1) since only the product matters.
DeviceSpec CalibrateFromMeasurement(const std::string& name,
                                    size_t param_count,
                                    double measured_tokens_per_second);

}  // namespace rt

#endif  // RATATOUILLE_SIM_DEVICE_MODEL_H_
