#include "sim/device_model.h"

namespace rt {

DeviceSpec DeviceSpec::CpuServer() {
  // 32 cores x 2.5 GHz x 32 FLOP/cycle (AVX-512 FMA) = 2.56 TFLOP/s peak.
  return {"cpu-server-32c", 2.56e12, 0.30};
}

DeviceSpec DeviceSpec::A100() {
  return {"nvidia-a100", 312e12, 0.01};
}

DeviceSpec DeviceSpec::SingleCore() {
  // 3 GHz x 16 FLOP/cycle (AVX2 FMA) peak for one core.
  return {"single-cpu-core", 48e9, 0.10};
}

TrainingWorkload PaperGpt2MediumWorkload() {
  TrainingWorkload w;
  w.param_count = 355'000'000;
  w.tokens_per_epoch = 27'000'000;  // 118,171 recipes x ~230 tokens
  w.epochs = 3;
  return w;
}

double ProjectSeconds(const TrainingWorkload& workload,
                      const DeviceSpec& device) {
  return workload.TotalFlops() / device.achieved_flops();
}

DeviceSpec CalibrateFromMeasurement(const std::string& name,
                                    size_t param_count,
                                    double measured_tokens_per_second) {
  DeviceSpec d;
  d.name = name;
  d.peak_flops = 6.0 * static_cast<double>(param_count) *
                 measured_tokens_per_second;
  d.efficiency = 1.0;
  return d;
}

}  // namespace rt
