#ifndef RATATOUILLE_EVAL_BLEU_H_
#define RATATOUILLE_EVAL_BLEU_H_

#include <string>
#include <vector>

namespace rt {

/// BLEU options (Papineni et al., 2002).
struct BleuOptions {
  /// Highest n-gram order (BLEU-4 default).
  int max_n = 4;
  /// Add-epsilon smoothing applied to zero n-gram matches so short or
  /// imperfect candidates get a finite score (NLTK "method 1" style).
  double smoothing_epsilon = 0.1;
};

/// Sentence BLEU of a candidate token sequence against one or more
/// references: geometric mean of modified n-gram precisions times the
/// brevity penalty. Returns a value in [0, 1].
double SentenceBleu(const std::vector<std::string>& candidate,
                    const std::vector<std::vector<std::string>>& references,
                    const BleuOptions& options = {});

/// Corpus BLEU: n-gram statistics are pooled over all candidate/reference
/// pairs before the geometric mean (the standard corpus-level definition,
/// not an average of sentence scores). candidates[i] is scored against
/// references[i].
double CorpusBleu(
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<std::vector<std::vector<std::string>>>& references,
    const BleuOptions& options = {});

/// Whitespace-tokenizing convenience wrappers.
double SentenceBleu(const std::string& candidate,
                    const std::string& reference,
                    const BleuOptions& options = {});
double CorpusBleu(const std::vector<std::string>& candidates,
                  const std::vector<std::string>& references,
                  const BleuOptions& options = {});

}  // namespace rt

#endif  // RATATOUILLE_EVAL_BLEU_H_
