#include "eval/bleu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace rt {
namespace {

using NgramCounts = std::map<std::vector<std::string>, long long>;

NgramCounts CountNgrams(const std::vector<std::string>& tokens, int n) {
  NgramCounts counts;
  if (static_cast<int>(tokens.size()) < n) return counts;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::vector<std::string> gram(tokens.begin() + i,
                                  tokens.begin() + i + n);
    ++counts[std::move(gram)];
  }
  return counts;
}

/// Clipped match count for order n of one candidate against references.
struct MatchStats {
  long long matches = 0;
  long long total = 0;
};

MatchStats MatchesForOrder(
    const std::vector<std::string>& candidate,
    const std::vector<std::vector<std::string>>& references, int n) {
  MatchStats stats;
  NgramCounts cand = CountNgrams(candidate, n);
  // Max reference count per n-gram (multi-reference clipping).
  NgramCounts max_ref;
  for (const auto& ref : references) {
    NgramCounts rc = CountNgrams(ref, n);
    for (const auto& [gram, count] : rc) {
      auto it = max_ref.find(gram);
      if (it == max_ref.end()) {
        max_ref.emplace(gram, count);
      } else {
        it->second = std::max(it->second, count);
      }
    }
  }
  for (const auto& [gram, count] : cand) {
    stats.total += count;
    auto it = max_ref.find(gram);
    if (it != max_ref.end()) {
      stats.matches += std::min(count, it->second);
    }
  }
  return stats;
}

/// Shortest reference length (the NIST brevity convention). Under it,
/// adding a reference can only raise clipped matches and can only lower
/// the brevity target, so BLEU is monotone in the reference set.
long long ShortestRefLength(
    const std::vector<std::vector<std::string>>& references) {
  long long best = -1;
  for (const auto& ref : references) {
    const long long len = static_cast<long long>(ref.size());
    if (best < 0 || len < best) best = len;
  }
  return best < 0 ? 0 : best;
}

double BleuFromStats(const std::vector<MatchStats>& per_order,
                     long long cand_len, long long ref_len,
                     const BleuOptions& options) {
  if (cand_len == 0) return 0.0;
  double log_precision_sum = 0.0;
  int orders = 0;
  for (const MatchStats& s : per_order) {
    if (s.total == 0) continue;  // candidate shorter than n
    double matches = static_cast<double>(s.matches);
    if (matches == 0.0) matches = options.smoothing_epsilon;
    log_precision_sum += std::log(matches / s.total);
    ++orders;
  }
  if (orders == 0) return 0.0;
  const double geo_mean = std::exp(log_precision_sum / orders);
  double brevity = 1.0;
  if (cand_len < ref_len) {
    brevity = std::exp(1.0 - static_cast<double>(ref_len) / cand_len);
  }
  return brevity * geo_mean;
}

}  // namespace

double SentenceBleu(const std::vector<std::string>& candidate,
                    const std::vector<std::vector<std::string>>& references,
                    const BleuOptions& options) {
  assert(!references.empty());
  std::vector<MatchStats> per_order;
  for (int n = 1; n <= options.max_n; ++n) {
    per_order.push_back(MatchesForOrder(candidate, references, n));
  }
  return BleuFromStats(per_order, static_cast<long long>(candidate.size()),
                       ShortestRefLength(references), options);
}

double CorpusBleu(
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<std::vector<std::vector<std::string>>>& references,
    const BleuOptions& options) {
  assert(candidates.size() == references.size());
  std::vector<MatchStats> pooled(options.max_n);
  long long cand_len = 0;
  long long ref_len = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (int n = 1; n <= options.max_n; ++n) {
      MatchStats s = MatchesForOrder(candidates[i], references[i], n);
      pooled[n - 1].matches += s.matches;
      pooled[n - 1].total += s.total;
    }
    cand_len += static_cast<long long>(candidates[i].size());
    ref_len += ShortestRefLength(references[i]);
  }
  return BleuFromStats(pooled, cand_len, ref_len, options);
}

double SentenceBleu(const std::string& candidate,
                    const std::string& reference,
                    const BleuOptions& options) {
  return SentenceBleu(SplitWhitespace(candidate),
                      {SplitWhitespace(reference)}, options);
}

double CorpusBleu(const std::vector<std::string>& candidates,
                  const std::vector<std::string>& references,
                  const BleuOptions& options) {
  assert(candidates.size() == references.size());
  std::vector<std::vector<std::string>> cands;
  std::vector<std::vector<std::vector<std::string>>> refs;
  for (size_t i = 0; i < candidates.size(); ++i) {
    cands.push_back(SplitWhitespace(candidates[i]));
    refs.push_back({SplitWhitespace(references[i])});
  }
  return CorpusBleu(cands, refs, options);
}

}  // namespace rt
