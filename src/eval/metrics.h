#ifndef RATATOUILLE_EVAL_METRICS_H_
#define RATATOUILLE_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "data/recipe.h"

namespace rt {

/// Perplexity from a mean next-token cross-entropy (nats).
double PerplexityFromLoss(double mean_loss);

/// Distinct-n diversity: number of unique n-grams across all texts
/// divided by the total n-gram count (Li et al., 2016). Returns 0 when no
/// n-grams exist.
double DistinctN(const std::vector<std::string>& texts, int n);

/// Fraction of generated texts that do NOT appear verbatim in the
/// training corpus ("novel" recipes). Both sides are compared after
/// whitespace normalization.
double NoveltyRate(const std::vector<std::string>& generated,
                   const std::vector<std::string>& training_corpus);

/// Fraction of the prompt ingredients that appear in the generated
/// recipe's ingredient list or instructions (did the model respect the
/// user's input?).
double IngredientCoverage(const Recipe& generated,
                          const std::vector<std::string>& prompt_ingredients);

/// Fraction of a recipe's ingredient lines whose quantity parses as a
/// number, fraction or mixed number ("2", "1/2", "1 1/2"). The paper
/// claims quantity awareness as its contribution over prior work; this is
/// the metric the ablation uses.
double QuantityWellFormedness(const Recipe& recipe);

/// True if `q` is a well-formed quantity string.
bool IsWellFormedQuantity(const std::string& q);

/// Structural validity of a tagged generation in [0, 1]: one point per
/// satisfied check (recipe delimiters present, ingredient/instruction/
/// title sections present and non-empty, sections in canonical order,
/// no dangling start tags), averaged. A perfectly formed recipe scores
/// 1; free text scores 0.
double StructuralValidity(const std::string& tagged);

}  // namespace rt

#endif  // RATATOUILLE_EVAL_METRICS_H_
