#ifndef RATATOUILLE_EVAL_ROUGE_H_
#define RATATOUILLE_EVAL_ROUGE_H_

#include <string>
#include <vector>

namespace rt {

/// ROUGE-L scores (Lin, 2004): longest-common-subsequence based recall,
/// precision and F-measure between a candidate and a reference token
/// sequence. Complements BLEU in the evaluation suite: BLEU is
/// precision-oriented, ROUGE-L rewards covering the reference in order.
struct RougeLScore {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

/// Token-level ROUGE-L. Either side may be empty (score 0).
RougeLScore RougeL(const std::vector<std::string>& candidate,
                   const std::vector<std::string>& reference);

/// Whitespace-tokenizing convenience wrapper.
RougeLScore RougeL(const std::string& candidate,
                   const std::string& reference);

/// Length of the longest common subsequence of two token sequences
/// (O(len(a) * len(b)) time, O(min) space).
size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b);

}  // namespace rt

#endif  // RATATOUILLE_EVAL_ROUGE_H_
