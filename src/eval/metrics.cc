#include "eval/metrics.h"

#include <cmath>
#include <set>
#include <unordered_set>

#include "text/special_tokens.h"
#include "util/strings.h"

namespace rt {

double PerplexityFromLoss(double mean_loss) { return std::exp(mean_loss); }

double DistinctN(const std::vector<std::string>& texts, int n) {
  std::set<std::vector<std::string>> unique;
  long long total = 0;
  for (const std::string& text : texts) {
    std::vector<std::string> tokens = SplitWhitespace(text);
    if (static_cast<int>(tokens.size()) < n) continue;
    for (size_t i = 0; i + n <= tokens.size(); ++i) {
      unique.insert(std::vector<std::string>(tokens.begin() + i,
                                             tokens.begin() + i + n));
      ++total;
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(unique.size()) / static_cast<double>(total);
}

namespace {

std::string NormalizeWhitespace(const std::string& s) {
  return Join(SplitWhitespace(s), " ");
}

}  // namespace

double NoveltyRate(const std::vector<std::string>& generated,
                   const std::vector<std::string>& training_corpus) {
  if (generated.empty()) return 0.0;
  std::unordered_set<std::string> train;
  for (const std::string& doc : training_corpus) {
    train.insert(NormalizeWhitespace(doc));
  }
  int novel = 0;
  for (const std::string& doc : generated) {
    if (!train.count(NormalizeWhitespace(doc))) ++novel;
  }
  return static_cast<double>(novel) / generated.size();
}

double IngredientCoverage(
    const Recipe& generated,
    const std::vector<std::string>& prompt_ingredients) {
  if (prompt_ingredients.empty()) return 1.0;
  std::string haystack;
  for (const auto& line : generated.ingredients) {
    haystack += line.name + " ";
  }
  for (const auto& step : generated.instructions) haystack += step + " ";
  int covered = 0;
  for (const std::string& ing : prompt_ingredients) {
    if (haystack.find(ing) != std::string::npos) ++covered;
  }
  return static_cast<double>(covered) / prompt_ingredients.size();
}

bool IsWellFormedQuantity(const std::string& q) {
  if (q.empty()) return false;
  // Grammar: INT | FRAC | INT " " FRAC, where FRAC = INT "/" INT.
  auto is_int = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  auto is_frac = [&](const std::string& s) {
    size_t slash = s.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 == s.size()) {
      return false;
    }
    const std::string denom = s.substr(slash + 1);
    return is_int(s.substr(0, slash)) && is_int(denom) && denom != "0";
  };
  std::vector<std::string> parts = SplitWhitespace(q);
  if (parts.size() == 1) return is_int(parts[0]) || is_frac(parts[0]);
  if (parts.size() == 2) return is_int(parts[0]) && is_frac(parts[1]);
  return false;
}

double StructuralValidity(const std::string& tagged) {
  // Free text with no tags at all scores 0 outright (the balanced check
  // below passes vacuously otherwise).
  bool any_tag = false;
  for (const auto& tag : StructuralTags()) {
    any_tag = any_tag || tagged.find(tag) != std::string::npos;
  }
  if (!any_tag) return 0.0;

  int checks = 0;
  int passed = 0;
  auto check = [&](bool ok) {
    ++checks;
    if (ok) ++passed;
  };
  auto pos_of = [&](const char* tag) { return tagged.find(tag); };
  auto section_nonempty = [&](const char* open, const char* close) {
    const size_t a = pos_of(open);
    const size_t b = pos_of(close);
    if (a == std::string::npos || b == std::string::npos || b <= a) {
      return false;
    }
    const size_t start = a + std::string(open).size();
    return !Trim(tagged.substr(start, b - start)).empty();
  };

  // Delimiters.
  check(pos_of(kRecipeStart) != std::string::npos);
  check(pos_of(kRecipeEnd) != std::string::npos);
  // Sections present with content.
  check(section_nonempty(kIngrStart, kIngrEnd));
  check(section_nonempty(kInstrStart, kInstrEnd));
  check(section_nonempty(kTitleStart, kTitleEnd));
  // Canonical order: INGR < INSTR < TITLE.
  {
    const size_t ingr = pos_of(kIngrStart);
    const size_t instr = pos_of(kInstrStart);
    const size_t title = pos_of(kTitleStart);
    check(ingr != std::string::npos && instr != std::string::npos &&
          title != std::string::npos && ingr < instr && instr < title);
  }
  // No dangling start tags: every *_START has its *_END afterwards.
  {
    bool balanced = true;
    const std::pair<const char*, const char*> pairs[] = {
        {kRecipeStart, kRecipeEnd}, {kIngrStart, kIngrEnd},
        {kInstrStart, kInstrEnd},   {kTitleStart, kTitleEnd},
        {kInputStart, kInputEnd},
    };
    for (const auto& [open, close] : pairs) {
      const size_t a = pos_of(open);
      if (a == std::string::npos) continue;  // absent is fine
      const size_t b = tagged.find(close, a);
      balanced = balanced && b != std::string::npos;
    }
    check(balanced);
  }
  return checks == 0 ? 0.0
                     : static_cast<double>(passed) /
                           static_cast<double>(checks);
}

double QuantityWellFormedness(const Recipe& recipe) {
  if (recipe.ingredients.empty()) return 0.0;
  int good = 0;
  for (const auto& line : recipe.ingredients) {
    if (IsWellFormedQuantity(line.quantity)) ++good;
  }
  return static_cast<double>(good) / recipe.ingredients.size();
}

}  // namespace rt
