#include "eval/rouge.h"

#include <algorithm>

#include "util/strings.h"

namespace rt {

size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  // Keep the DP row over the shorter sequence.
  const auto& rows = a.size() >= b.size() ? a : b;
  const auto& cols = a.size() >= b.size() ? b : a;
  std::vector<size_t> prev(cols.size() + 1, 0);
  std::vector<size_t> cur(cols.size() + 1, 0);
  for (size_t i = 1; i <= rows.size(); ++i) {
    for (size_t j = 1; j <= cols.size(); ++j) {
      if (rows[i - 1] == cols[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[cols.size()];
}

RougeLScore RougeL(const std::vector<std::string>& candidate,
                   const std::vector<std::string>& reference) {
  RougeLScore score;
  if (candidate.empty() || reference.empty()) return score;
  const double lcs = static_cast<double>(LcsLength(candidate, reference));
  score.recall = lcs / reference.size();
  score.precision = lcs / candidate.size();
  if (score.recall + score.precision > 0.0) {
    score.f1 = 2.0 * score.recall * score.precision /
               (score.recall + score.precision);
  }
  return score;
}

RougeLScore RougeL(const std::string& candidate,
                   const std::string& reference) {
  return RougeL(SplitWhitespace(candidate), SplitWhitespace(reference));
}

}  // namespace rt
