#ifndef RATATOUILLE_CORE_PIPELINE_H_
#define RATATOUILLE_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/preprocess.h"
#include "models/language_model.h"
#include "models/trainer.h"
#include "serve/backend_service.h"
#include "serve/batch_scheduler.h"
#include "text/tokenizer.h"

namespace rt {

/// The four models of the paper's Table I, plus the future-work config.
enum class ModelKind {
  kCharLstm,
  kWordLstm,
  kDistilGpt2,
  kGpt2Medium,
  kGptDeep,  // paper Sec. VII future work ("GPT-Neo"-style deeper model)
};

/// Display name matching Table I rows ("Char-level LSTM", ...).
const char* ModelKindName(ModelKind kind);

/// Parses "char-lstm", "word-lstm", "distilgpt2", "gpt2-medium",
/// "gpt-deep".
StatusOr<ModelKind> ParseModelKind(const std::string& name);

/// End-to-end configuration of a Ratatouille run.
struct PipelineOptions {
  /// Synthetic RecipeDB corpus parameters.
  GeneratorOptions corpus;
  /// Preprocessing rules (paper Sec. III).
  PreprocessOptions preprocess;
  /// Skip preprocessing entirely (ablation A4).
  bool skip_preprocessing = false;
  double val_frac = 0.05;
  double test_frac = 0.10;
  uint64_t split_seed = 17;

  ModelKind model = ModelKind::kGpt2Medium;
  /// BPE vocabulary budget for the GPT-2 family.
  int bpe_vocab_budget = 640;
  /// Strip fraction special tokens before training (ablation A2).
  bool disable_fraction_tokens = false;

  TrainerOptions trainer;
};

/// A structured generation result.
struct GeneratedRecipe {
  Recipe recipe;          // parsed from the tagged output
  std::string raw_tagged;  // prompt + generated text
  double seconds = 0.0;    // wall-clock generation time
  int tokens_generated = 0;
  /// Prompt tokens fed to the model (usage accounting).
  int prompt_tokens = 0;
  /// How decoding ended; kDeadlineExceeded / kCancelled mean the recipe
  /// was parsed from a partial decode.
  FinishReason finish = FinishReason::kStopToken;
};

/// BLEU evaluation summary over held-out prompts (experiment E1).
struct BleuReport {
  double corpus_bleu = 0.0;
  double mean_sentence_bleu = 0.0;
  int num_samples = 0;
  double mean_generation_seconds = 0.0;
  double distinct2 = 0.0;
  double novelty_rate = 0.0;
  double mean_ingredient_coverage = 0.0;
  double mean_quantity_wellformed = 0.0;
  double mean_structural_validity = 0.0;
};

/// The end-to-end Ratatouille system: synthesize the RecipeDB-like
/// corpus, preprocess it, build the tokenizer, train the selected model,
/// generate recipes from ingredient prompts and evaluate them — the
/// complete loop behind the paper's web demo.
class Pipeline {
 public:
  /// Builds corpus, splits and tokenizer, and instantiates the model
  /// (untrained). Fails on inconsistent options.
  static StatusOr<std::unique_ptr<Pipeline>> Create(PipelineOptions options);

  /// Trains the model on the training split; returns trainer statistics.
  StatusOr<TrainResult> Train();

  /// Generates a recipe from an ingredient list (the web-app request
  /// path). The model should be trained first; untrained models produce
  /// gibberish but the call still succeeds.
  StatusOr<GeneratedRecipe> GenerateFromIngredients(
      const std::vector<std::string>& ingredients,
      const GenerationOptions& options);

  /// Same, but decodes with `model` instead of the pipeline's own
  /// instance. The tokenizer and prompt preparation are shared (both
  /// immutable after Create()), so independent model instances — see
  /// CloneModel() — can generate concurrently from different threads.
  StatusOr<GeneratedRecipe> GenerateFromIngredientsWith(
      LanguageModel* model, const std::vector<std::string>& ingredients,
      const GenerationOptions& options);

  /// The decode step of a generation: prompt token ids in, generated
  /// result out (LanguageModel::Generate is the canonical shape).
  using DecodeFn = std::function<GenerationResult(
      const std::vector<int>&, const GenerationOptions&)>;

  /// Like GenerateFromIngredientsWith, but decoding goes through an
  /// arbitrary callback — e.g. serve::BatchScheduler::Generate — so the
  /// batched serving path shares prompt preparation, stop-token
  /// resolution and recipe parsing with the sequential one.
  StatusOr<GeneratedRecipe> GenerateFromIngredientsVia(
      const DecodeFn& decode,
      const std::vector<std::string>& ingredients,
      const GenerationOptions& options);

  /// Deep-copies the trained model for an additional generation session
  /// (serving concurrency). Fails for model kinds without Clone().
  StatusOr<std::unique_ptr<LanguageModel>> CloneModel();

  /// Generates continuations for `num_samples` held-out test recipes and
  /// scores them against the references (corpus BLEU, diversity, novelty,
  /// coverage, quantity well-formedness).
  StatusOr<BleuReport> EvaluateOnTestSet(int num_samples,
                                         GenerationOptions options);

  /// Mean eval loss on the validation stream (perplexity = exp(loss)).
  float ValidationLoss();

  // Accessors.
  const PreprocessStats& preprocess_stats() const {
    return preprocess_stats_;
  }
  const DatasetSplits& splits() const { return splits_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }
  LanguageModel* model() { return model_.get(); }
  const PipelineOptions& options() const { return options_; }
  /// Token id that terminates generation (<RECIPE_END>).
  int stop_token() const { return stop_token_; }
  const std::vector<int>& train_stream() const { return train_stream_; }

 private:
  explicit Pipeline(PipelineOptions options);

  Status Initialize();
  std::string PreparePrompt(const std::string& prompt_text) const;

  /// True for the GPT-2 family: training uses one recipe per window
  /// (positions start at 0 for every document, matching generation).
  bool UsesRecipeWindows() const;
  TokenSource TrainSource() const;
  TokenSource ValSource() const;

  PipelineOptions options_;
  PreprocessStats preprocess_stats_;
  DatasetSplits splits_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<LanguageModel> model_;
  std::vector<int> train_stream_;
  std::vector<int> val_stream_;
  std::vector<std::vector<int>> train_windows_;
  std::vector<std::vector<int>> val_windows_;
  int stop_token_ = -1;
};

/// Creates a bare model of `kind` for a given vocabulary size (used by
/// benchmarks that manage their own data).
std::unique_ptr<LanguageModel> CreateModel(ModelKind kind, int vocab_size);

/// Maps a parsed /v1/generate request onto decoding options — the
/// serving glue shared by the CLI, the web-app example and the
/// benchmarks.
GenerationOptions ToGenerationOptions(const GenerateRequest& request);

/// Builds a BackendService session factory over `pipeline`: session 0
/// decodes with the pipeline's own trained model, later sessions with
/// deep copies (Pipeline::CloneModel()). `session_models` receives
/// ownership of the clones and must outlive the BackendService.
BackendService::SessionFactory MakePipelineSessionFactory(
    Pipeline* pipeline,
    std::vector<std::unique_ptr<LanguageModel>>* session_models);

/// Builds a session factory whose sessions all submit to one shared
/// cross-session BatchScheduler over the pipeline's own model, so
/// concurrent requests coalesce into batched decode steps instead of
/// each owning a model clone. The scheduler must outlive the
/// BackendService.
BackendService::SessionFactory MakeBatchedPipelineSessionFactory(
    Pipeline* pipeline, serve::BatchScheduler* scheduler);

/// Installs a /v1/metrics extender on `options` that reports the
/// scheduler's occupancy gauges (the batch_* fields of docs/api.md).
void InstallBatchMetrics(serve::BatchScheduler* scheduler,
                         BackendOptions* options);

}  // namespace rt

#endif  // RATATOUILLE_CORE_PIPELINE_H_
