#ifndef RATATOUILLE_CORE_RATATOUILLE_H_
#define RATATOUILLE_CORE_RATATOUILLE_H_

/// Umbrella public header for the Ratatouille novel-recipe-generation
/// library — a from-scratch C++ reproduction of "Ratatouille: A tool for
/// Novel Recipe Generation" (ICDE 2022).
///
/// Typical use:
///
///   rt::PipelineOptions options;
///   options.corpus.num_recipes = 1500;
///   options.model = rt::ModelKind::kGpt2Medium;
///   options.trainer.epochs = 4;
///   auto pipeline = rt::Pipeline::Create(options);
///   (*pipeline)->Train();
///   auto recipe = (*pipeline)->GenerateFromIngredients(
///       {"tomato", "onion", "garlic"}, {});
///
/// Modules (see DESIGN.md for the full inventory):
///  - util/    Status, RNG, logging, string/table helpers
///  - tensor/  float32 tensors, kernels and reverse-mode autodiff
///  - nn/      layers, optimizers, schedules, checkpoints
///  - text/    char / word / BPE tokenizers and the tag vocabulary
///  - data/    synthetic RecipeDB, preprocessing, batching
///  - models/  char-LSTM, word-LSTM, GPT-2 family, trainer, sampler
///  - eval/    BLEU, perplexity, diversity, novelty, quantity metrics
///  - sim/     device cost model (CPU vs A100 projection)
///  - serve/   HTTP/JSON microservices (backend + decoupled frontend)
///  - core/    this Pipeline API

#include "core/pipeline.h"
#include "data/generator.h"
#include "data/preprocess.h"
#include "data/recipe.h"
#include "eval/bleu.h"
#include "eval/metrics.h"
#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "models/trainer.h"
#include "serve/backend_service.h"
#include "serve/frontend_service.h"
#include "sim/device_model.h"
#include "text/special_tokens.h"

#endif  // RATATOUILLE_CORE_RATATOUILLE_H_
