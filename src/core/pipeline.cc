#include "core/pipeline.h"

#include <cassert>

#include "eval/bleu.h"
#include "eval/metrics.h"
#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/special_tokens.h"
#include "text/word_tokenizer.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rt {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCharLstm:
      return "Char-level LSTM";
    case ModelKind::kWordLstm:
      return "Word-level LSTM";
    case ModelKind::kDistilGpt2:
      return "DistilGPT2";
    case ModelKind::kGpt2Medium:
      return "GPT-2 medium";
    case ModelKind::kGptDeep:
      return "GPT-deep (future work)";
  }
  return "?";
}

StatusOr<ModelKind> ParseModelKind(const std::string& name) {
  if (name == "char-lstm") return ModelKind::kCharLstm;
  if (name == "word-lstm") return ModelKind::kWordLstm;
  if (name == "distilgpt2") return ModelKind::kDistilGpt2;
  if (name == "gpt2-medium") return ModelKind::kGpt2Medium;
  if (name == "gpt-deep") return ModelKind::kGptDeep;
  return Status::InvalidArgument("unknown model kind: " + name);
}

std::unique_ptr<LanguageModel> CreateModel(ModelKind kind, int vocab_size) {
  switch (kind) {
    case ModelKind::kCharLstm: {
      LstmConfig cfg;
      cfg.vocab_size = vocab_size;
      cfg.embed_dim = 32;
      cfg.hidden_dim = 96;
      cfg.num_layers = 1;
      cfg.dropout = 0.05f;
      cfg.name = "char-lstm";
      return std::make_unique<LstmLm>(cfg);
    }
    case ModelKind::kWordLstm: {
      LstmConfig cfg;
      cfg.vocab_size = vocab_size;
      cfg.embed_dim = 64;
      cfg.hidden_dim = 128;
      cfg.num_layers = 1;
      cfg.dropout = 0.05f;
      cfg.name = "word-lstm";
      return std::make_unique<LstmLm>(cfg);
    }
    case ModelKind::kDistilGpt2:
      return std::make_unique<Gpt2Lm>(Gpt2Config::Distil(vocab_size));
    case ModelKind::kGpt2Medium:
      return std::make_unique<Gpt2Lm>(Gpt2Config::Medium(vocab_size));
    case ModelKind::kGptDeep:
      return std::make_unique<Gpt2Lm>(Gpt2Config::Deep(vocab_size));
  }
  return nullptr;
}

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Create(
    PipelineOptions options) {
  if (options.val_frac < 0 || options.test_frac < 0 ||
      options.val_frac + options.test_frac >= 1.0) {
    return Status::InvalidArgument("bad split fractions");
  }
  if (options.corpus.num_recipes <= 0) {
    return Status::InvalidArgument("num_recipes must be positive");
  }
  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline(std::move(options)));
  RT_RETURN_IF_ERROR(pipeline->Initialize());
  return pipeline;
}

Status Pipeline::Initialize() {
  // 1. Synthesize the raw RecipeDB-like corpus.
  RecipeDbGenerator generator(options_.corpus);
  std::vector<Recipe> raw = generator.Generate();

  // 2. Preprocess (paper Sec. III), unless ablated away.
  std::vector<Recipe> clean;
  if (options_.skip_preprocessing) {
    clean = std::move(raw);
    preprocess_stats_ = PreprocessStats{};
    preprocess_stats_.input_count = preprocess_stats_.output_count =
        static_cast<int>(clean.size());
  } else {
    Preprocessor preprocessor(options_.preprocess);
    clean = preprocessor.Run(raw, &preprocess_stats_);
  }
  if (clean.empty()) {
    return Status::FailedPrecondition("preprocessing removed every recipe");
  }

  // 3. Split.
  splits_ = SplitDataset(clean, options_.val_frac, options_.test_frac,
                         options_.split_seed);
  if (splits_.train.empty()) {
    return Status::FailedPrecondition("empty training split");
  }

  // 4. Tokenizer over the training documents only.
  std::vector<std::string> train_docs;
  train_docs.reserve(splits_.train.size());
  for (const Recipe& r : splits_.train) {
    std::string doc = r.ToTaggedString();
    if (options_.disable_fraction_tokens) doc = DenormalizeFractions(doc);
    train_docs.push_back(std::move(doc));
  }
  switch (options_.model) {
    case ModelKind::kCharLstm:
      tokenizer_ =
          std::make_unique<CharTokenizer>(CharTokenizer::Build(train_docs));
      break;
    case ModelKind::kWordLstm:
      tokenizer_ =
          std::make_unique<WordTokenizer>(WordTokenizer::Build(train_docs));
      break;
    default:
      tokenizer_ = std::make_unique<BpeTokenizer>(
          BpeTokenizer::Train(train_docs, options_.bpe_vocab_budget));
  }
  stop_token_ = tokenizer_->vocab().GetId(kRecipeEnd);
  assert(stop_token_ >= 0);

  // 5. Token streams / windows. The GPT-2 family trains one recipe per
  // window so position embeddings cover exactly the offsets generation
  // visits (the paper's one-recipe-per-training-instance layout); the
  // LSTMs use the classic contiguous stream.
  auto encode_doc = [&](const Recipe& r) {
    std::string doc = r.ToTaggedString() + " ";
    if (options_.disable_fraction_tokens) doc = DenormalizeFractions(doc);
    return tokenizer_->Encode(doc);
  };
  auto encode_corpus = [&](const std::vector<Recipe>& recipes) {
    std::vector<int> stream;
    for (const Recipe& r : recipes) {
      std::vector<int> ids = encode_doc(r);
      stream.insert(stream.end(), ids.begin(), ids.end());
    }
    return stream;
  };
  if (UsesRecipeWindows()) {
    auto build = [&](const std::vector<Recipe>& recipes) {
      std::vector<std::vector<int>> windows;
      windows.reserve(recipes.size());
      for (const Recipe& r : recipes) {
        std::vector<int> ids = encode_doc(r);
        if (static_cast<int>(ids.size()) > options_.trainer.seq_len + 1) {
          ids.resize(options_.trainer.seq_len + 1);
        }
        windows.push_back(std::move(ids));
      }
      return windows;
    };
    train_windows_ = build(splits_.train);
    val_windows_ = build(splits_.val);
  } else {
    train_stream_ = encode_corpus(splits_.train);
    val_stream_ = encode_corpus(splits_.val);
  }
  // The raw stream is always available for inspection/benchmarks.
  if (train_stream_.empty()) train_stream_ = encode_corpus(splits_.train);

  // 6. Model.
  model_ = CreateModel(options_.model, tokenizer_->vocab_size());
  if (model_ == nullptr) {
    return Status::Internal("model construction failed");
  }
  return Status::OK();
}

bool Pipeline::UsesRecipeWindows() const {
  switch (options_.model) {
    case ModelKind::kDistilGpt2:
    case ModelKind::kGpt2Medium:
    case ModelKind::kGptDeep:
      return true;
    default:
      return false;
  }
}

TokenSource Pipeline::TrainSource() const {
  TokenSource source;
  if (UsesRecipeWindows()) {
    source.windows = &train_windows_;
    source.pad_id = tokenizer_->pad_id();
  } else {
    source.stream = &train_stream_;
  }
  return source;
}

TokenSource Pipeline::ValSource() const {
  TokenSource source;
  if (UsesRecipeWindows()) {
    source.windows = &val_windows_;
    source.pad_id = tokenizer_->pad_id();
  } else {
    source.stream = &val_stream_;
  }
  return source;
}

StatusOr<TrainResult> Pipeline::Train() {
  Trainer trainer(model_.get(), options_.trainer);
  TokenSource val = ValSource();
  const bool has_val = UsesRecipeWindows() ? !val_windows_.empty()
                                           : !val_stream_.empty();
  return trainer.Train(TrainSource(), has_val ? &val : nullptr);
}

float Pipeline::ValidationLoss() {
  Trainer trainer(model_.get(), options_.trainer);
  return trainer.Evaluate(ValSource());
}

std::string Pipeline::PreparePrompt(const std::string& prompt_text) const {
  return options_.disable_fraction_tokens
             ? DenormalizeFractions(prompt_text)
             : prompt_text;
}

StatusOr<GeneratedRecipe> Pipeline::GenerateFromIngredients(
    const std::vector<std::string>& ingredients,
    const GenerationOptions& options) {
  return GenerateFromIngredientsWith(model_.get(), ingredients, options);
}

StatusOr<std::unique_ptr<LanguageModel>> Pipeline::CloneModel() {
  std::unique_ptr<LanguageModel> copy = model_->Clone();
  if (copy == nullptr) {
    return Status::Unimplemented("model '" + model_->name() +
                                 "' does not support Clone()");
  }
  return copy;
}

StatusOr<GeneratedRecipe> Pipeline::GenerateFromIngredientsWith(
    LanguageModel* model, const std::vector<std::string>& ingredients,
    const GenerationOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("model is null");
  }
  return GenerateFromIngredientsVia(
      [model](const std::vector<int>& prompt_ids,
              const GenerationOptions& opts) {
        return model->Generate(prompt_ids, opts);
      },
      ingredients, options);
}

StatusOr<GeneratedRecipe> Pipeline::GenerateFromIngredientsVia(
    const DecodeFn& decode, const std::vector<std::string>& ingredients,
    const GenerationOptions& options) {
  if (!decode) {
    return Status::InvalidArgument("decode callback is null");
  }
  if (ingredients.empty()) {
    return Status::InvalidArgument("ingredient list is empty");
  }
  Recipe prompt_recipe;
  for (const std::string& name : ingredients) {
    prompt_recipe.ingredients.push_back({"", "", ToLower(Trim(name)), ""});
  }
  const std::string prompt = PreparePrompt(prompt_recipe.PromptPrefix());
  std::vector<int> prompt_ids = tokenizer_->Encode(prompt);
  GenerationOptions opts = options;
  if (opts.stop_token < 0) opts.stop_token = stop_token_;

  Timer timer;
  GenerationResult generated = decode(prompt_ids, opts);
  GeneratedRecipe out;
  out.seconds = timer.ElapsedSeconds();
  out.tokens_generated = static_cast<int>(generated.ids.size());
  out.prompt_tokens = static_cast<int>(prompt_ids.size());
  out.finish = generated.finish;
  out.raw_tagged = prompt + " " + tokenizer_->Decode(generated.ids);
  auto parsed = ParseTaggedRecipe(out.raw_tagged);
  if (parsed.ok()) {
    out.recipe = *parsed;
  }
  return out;
}

StatusOr<BleuReport> Pipeline::EvaluateOnTestSet(int num_samples,
                                                 GenerationOptions options) {
  if (splits_.test.empty()) {
    return Status::FailedPrecondition("no test split");
  }
  const int n =
      std::min<int>(num_samples, static_cast<int>(splits_.test.size()));
  if (options.stop_token < 0) options.stop_token = stop_token_;

  BleuReport report;
  report.num_samples = n;
  std::vector<std::string> candidates;
  std::vector<std::string> references;
  std::vector<std::string> train_docs;
  for (const Recipe& r : splits_.train) {
    train_docs.push_back(r.ToTaggedString());
  }

  double total_seconds = 0.0;
  double sentence_bleu_sum = 0.0;
  double coverage_sum = 0.0;
  double quantity_sum = 0.0;
  double validity_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const Recipe& ref = splits_.test[i];
    const std::string prompt = PreparePrompt(ref.PromptPrefix());
    std::vector<int> prompt_ids = tokenizer_->Encode(prompt);
    GenerationOptions opts = options;
    opts.seed = options.seed + static_cast<uint64_t>(i) * 0x9E37;

    Timer timer;
    std::vector<int> generated = model_->GenerateIds(prompt_ids, opts);
    total_seconds += timer.ElapsedSeconds();

    const std::string candidate =
        prompt + " " + tokenizer_->Decode(generated);
    std::string reference = PreparePrompt(ref.ToTaggedString());
    candidates.push_back(candidate);
    references.push_back(reference);
    sentence_bleu_sum += SentenceBleu(candidate, reference);
    validity_sum += StructuralValidity(candidate);

    auto parsed = ParseTaggedRecipe(candidate);
    if (parsed.ok()) {
      coverage_sum += IngredientCoverage(*parsed, ref.IngredientNames());
      quantity_sum += QuantityWellFormedness(*parsed);
    }
  }
  report.corpus_bleu = CorpusBleu(candidates, references);
  report.mean_sentence_bleu = sentence_bleu_sum / n;
  report.mean_generation_seconds = total_seconds / n;
  report.distinct2 = DistinctN(candidates, 2);
  report.novelty_rate = NoveltyRate(candidates, train_docs);
  report.mean_ingredient_coverage = coverage_sum / n;
  report.mean_quantity_wellformed = quantity_sum / n;
  report.mean_structural_validity = validity_sum / n;
  return report;
}

GenerationOptions ToGenerationOptions(const GenerateRequest& request) {
  GenerationOptions gen;
  gen.max_new_tokens = request.max_tokens;
  gen.sampling.temperature = static_cast<float>(request.temperature);
  gen.sampling.top_k = request.top_k;
  gen.sampling.top_p = static_cast<float>(request.top_p);
  gen.sampling.greedy = request.greedy;
  gen.beam_width = request.beam_width;
  gen.seed = request.seed;
  gen.deadline = request.deadline;
  gen.cancel = request.cancel;
  gen.trace_id = request.trace_id;
  gen.sched_class = static_cast<int>(request.priority);
  return gen;
}

namespace {

/// Maps a finished GeneratedRecipe onto the serving outcome shape.
GenerateOutcome ToGenerateOutcome(GeneratedRecipe out) {
  GenerateOutcome outcome;
  outcome.recipe = std::move(out.recipe);
  outcome.finish = out.finish;
  outcome.tokens_generated = out.tokens_generated;
  outcome.prompt_tokens = out.prompt_tokens;
  return outcome;
}

/// ToGenerationOptions plus the streaming bridge: when the request
/// carries an on_token hook, the model-level hook decodes each token's
/// incremental text by diffing the full decode against the previous
/// prefix (tokenizers are not prefix-stable token-by-token — BPE
/// merges and word-level spacing depend on context).
GenerationOptions ToStreamedOptions(const Pipeline* pipeline,
                                    const GenerateRequest& req) {
  GenerationOptions opts = ToGenerationOptions(req);
  if (!req.on_token) return opts;
  const Tokenizer* tokenizer = &pipeline->tokenizer();
  auto ids = std::make_shared<std::vector<int>>();
  auto prev_len = std::make_shared<size_t>(0);
  opts.on_token = [on_token = req.on_token, tokenizer, ids,
                   prev_len](int id) {
    ids->push_back(id);
    const std::string full = tokenizer->Decode(*ids);
    const std::string delta =
        full.size() >= *prev_len ? full.substr(*prev_len) : full;
    *prev_len = full.size();
    on_token(id, delta);
  };
  return opts;
}

}  // namespace

BackendService::SessionFactory MakePipelineSessionFactory(
    Pipeline* pipeline,
    std::vector<std::unique_ptr<LanguageModel>>* session_models) {
  return [pipeline, session_models](int session_index)
             -> BackendService::GenerateFn {
    LanguageModel* model = pipeline->model();
    if (session_index > 0) {
      auto clone = pipeline->CloneModel();
      if (!clone.ok()) {
        const Status status = clone.status();
        return [status](const GenerateRequest&)
                   -> StatusOr<GenerateOutcome> { return status; };
      }
      session_models->push_back(std::move(*clone));
      model = session_models->back().get();
    }
    return [pipeline, model](const GenerateRequest& req)
               -> StatusOr<GenerateOutcome> {
      RT_ASSIGN_OR_RETURN(GeneratedRecipe out,
                          pipeline->GenerateFromIngredientsWith(
                              model, req.ingredients,
                              ToStreamedOptions(pipeline, req)));
      return ToGenerateOutcome(std::move(out));
    };
  };
}

BackendService::SessionFactory MakeBatchedPipelineSessionFactory(
    Pipeline* pipeline, serve::BatchScheduler* scheduler) {
  // Every session slot shares the scheduler: sessions only gate how many
  // requests decode concurrently, while the scheduler coalesces their
  // steps into batched forwards over the pipeline's single model.
  return [pipeline, scheduler](int) -> BackendService::GenerateFn {
    return [pipeline, scheduler](const GenerateRequest& req)
               -> StatusOr<GenerateOutcome> {
      RT_ASSIGN_OR_RETURN(
          GeneratedRecipe out,
          pipeline->GenerateFromIngredientsVia(
              [scheduler](const std::vector<int>& prompt_ids,
                          const GenerationOptions& options) {
                return scheduler->Generate(prompt_ids, options);
              },
              req.ingredients, ToStreamedOptions(pipeline, req)));
      return ToGenerateOutcome(std::move(out));
    };
  };
}

void InstallBatchMetrics(serve::BatchScheduler* scheduler,
                         BackendOptions* options) {
  options->batch_metrics = [scheduler](Json* out) {
    const serve::BatchSchedulerStats stats = scheduler->stats();
    out->Set("batch_steps", static_cast<double>(stats.steps));
    out->Set("batch_row_steps", static_cast<double>(stats.row_steps));
    out->Set("batch_mean_occupancy", stats.mean_occupancy());
    out->Set("batch_peak_occupancy",
             static_cast<double>(stats.peak_occupancy));
    out->Set("batch_active", static_cast<double>(stats.active));
    out->Set("batch_pending", static_cast<double>(stats.pending));
    out->Set("batch_admitted", static_cast<double>(stats.admitted));
    out->Set("batch_completed", static_cast<double>(stats.completed));
    out->Set("batch_arena_heap_allocs",
             static_cast<double>(stats.arena_heap_allocs));
    out->Set("prefix_cache_hits",
             static_cast<double>(stats.prefix_cache_hits));
    out->Set("prefix_cache_misses",
             static_cast<double>(stats.prefix_cache_misses));
    out->Set("prefix_cache_evictions",
             static_cast<double>(stats.prefix_cache_evictions));
    out->Set("prefix_cache_entries",
             static_cast<double>(stats.prefix_cache_entries));
    // Scheduler-policy counters. The backend seeds sched_* with the
    // HTTP layer's shed count before this extender runs, so add the
    // scheduler-level sheds instead of overwriting them.
    out->Set("sched_preemptions", static_cast<double>(stats.preemptions));
    const Json& http_shed = out->Get("sched_shed_unmeetable");
    out->Set("sched_shed_unmeetable",
             (http_shed.is_number() ? http_shed.AsNumber() : 0.0) +
                 static_cast<double>(stats.shed_unmeetable));
  };
}

}  // namespace rt
