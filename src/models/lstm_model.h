#ifndef RATATOUILLE_MODELS_LSTM_MODEL_H_
#define RATATOUILLE_MODELS_LSTM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "models/language_model.h"
#include "nn/layers.h"

namespace rt {

/// Configuration of an LSTM language model (paper Sec. IV-A). The same
/// class backs both the character-level and word-level baselines; only
/// the tokenizer (and thus vocab size) differs.
struct LstmConfig {
  int vocab_size = 0;
  int embed_dim = 64;
  int hidden_dim = 128;
  int num_layers = 1;
  float dropout = 0.1f;
  uint64_t init_seed = 1;
  /// Display name ("char-lstm" / "word-lstm").
  std::string name = "lstm";
};

/// LSTM next-token language model: embedding -> N LSTM layers ->
/// (dropout) -> linear head over the vocabulary.
class LstmLm : public LanguageModel {
 public:
  explicit LstmLm(const LstmConfig& config);

  std::string name() const override { return config_.name; }
  Module* module() override { return &root_; }
  int vocab_size() const override { return config_.vocab_size; }

  float TrainStep(const Batch& batch, Rng* dropout_rng) override;
  float EvalLoss(const Batch& batch) override;
  GenerationResult Generate(const std::vector<int>& prompt,
                            const GenerationOptions& options) override;
  std::unique_ptr<LanguageModel> Clone() override;
  std::unique_ptr<BatchDecoder> MakeBatchDecoder() override;

  const LstmConfig& config() const { return config_; }

 private:
  class BatchDecoderImpl;  // lstm_model.cc; nested for weight access

  /// Root module that owns the layers (so NamedParameters is stable).
  class Root : public Module {
   public:
    Root(const LstmConfig& config, Rng* rng);
    Embedding embed;
    Lstm lstm;
    Linear head;
  };

  /// Shared forward for train/eval; returns the batch loss. When
  /// `training` is false, no dropout and no backward.
  float RunBatch(const Batch& batch, bool training, Rng* dropout_rng);

  LstmConfig config_;
  Rng init_rng_;  // consumed by Root's member initializers
  Root root_;
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_LSTM_MODEL_H_
