#ifndef RATATOUILLE_MODELS_LANGUAGE_MODEL_H_
#define RATATOUILLE_MODELS_LANGUAGE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/sampler.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace rt {

/// Options for autoregressive generation.
struct GenerationOptions {
  SamplingOptions sampling;
  int max_new_tokens = 256;
  /// Stop when this token id is emitted (-1 = never). Callers usually set
  /// it to the <RECIPE_END> id.
  int stop_token = -1;
  uint64_t seed = 0;
  /// > 0 switches to deterministic beam search where the model supports
  /// it (the GPT-2 family); sampling options are then ignored.
  int beam_width = 0;
  /// Length-normalization exponent for beam search.
  float beam_length_penalty = 0.6f;
};

/// Common interface of the paper's models (char-LSTM, word-LSTM, GPT-2
/// variants). Models are token-level: pairing with a tokenizer happens one
/// layer up (rt::Pipeline). All methods are deterministic given seeds.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  /// Short id, e.g. "char-lstm", "gpt2-medium".
  virtual std::string name() const = 0;

  /// The underlying parameter tree (for optimizers and checkpoints).
  virtual Module* module() = 0;

  /// Runs forward+backward on one batch, leaving gradients accumulated
  /// in the module parameters (the caller owns the optimizer step).
  /// Returns the mean next-token cross-entropy of the batch.
  virtual float TrainStep(const Batch& batch, Rng* dropout_rng) = 0;

  /// Mean next-token cross-entropy without touching gradients.
  virtual float EvalLoss(const Batch& batch) = 0;

  /// Continues `prompt` autoregressively; returns only the newly
  /// generated ids.
  virtual std::vector<int> GenerateIds(const std::vector<int>& prompt,
                                       const GenerationOptions& options) = 0;

  /// Deep-copies the model (configuration + current weights) into an
  /// independent instance, so concurrent serving sessions can generate
  /// in parallel while each instance stays single-threaded. Returns
  /// nullptr when the model kind does not support cloning.
  virtual std::unique_ptr<LanguageModel> Clone() { return nullptr; }

  /// Vocabulary size the model was built for.
  virtual int vocab_size() const = 0;

  /// Longest sequence the model can attend over (0 = unbounded).
  virtual int max_seq_len() const { return 0; }

  /// Total trainable weights (for the device-time model).
  size_t NumParams() { return module()->NumParams(); }
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_LANGUAGE_MODEL_H_
