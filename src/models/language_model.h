#ifndef RATATOUILLE_MODELS_LANGUAGE_MODEL_H_
#define RATATOUILLE_MODELS_LANGUAGE_MODEL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/batch_decode.h"
#include "models/sampler.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace rt {

/// Options for autoregressive generation.
struct GenerationOptions {
  SamplingOptions sampling;
  int max_new_tokens = 256;
  /// Stop when this token id is emitted (-1 = never). Callers usually set
  /// it to the <RECIPE_END> id.
  int stop_token = -1;
  uint64_t seed = 0;
  /// > 0 switches to deterministic beam search where the model supports
  /// it (the GPT-2 family); sampling options are then ignored.
  int beam_width = 0;
  /// Length-normalization exponent for beam search.
  float beam_length_penalty = 0.6f;
  /// Generation stops with a partial result once this passes; the decode
  /// loops check it at token granularity. Default: no deadline.
  Deadline deadline;
  /// Optional cooperative cancellation, polled once per token alongside
  /// the deadline. The model only reads the token; the owner fires it.
  std::shared_ptr<const CancelToken> cancel;
  /// Request-scoped trace id (obs::TraceRecorder). Decode loops tag
  /// their prefill/sample spans with it so a served request's trace is
  /// one contiguous track. 0 = untraced (library callers).
  uint64_t trace_id = 0;
  /// Streaming hook: invoked with each newly decoded token id right
  /// after it is appended to the result, on the decoding thread. Beam
  /// search emits nothing until the whole beam resolves. Must not
  /// block for long — it runs inside the decode (or scheduler) loop.
  std::function<void(int)> on_token;
  /// Scheduling class hint for the serving layer: 0 = interactive
  /// (default), 1 = batch. Batch-class rows may be admitted later and
  /// preempted in favor of tighter-deadline interactive work; the
  /// decode loops themselves ignore it.
  int sched_class = 0;
};

/// Why a generation stopped.
enum class FinishReason {
  kStopToken,         // emitted options.stop_token
  kMaxTokens,         // hit options.max_new_tokens
  kContextFull,       // ran out of attention positions
  kDeadlineExceeded,  // options.deadline passed mid-decode
  kCancelled,         // options.cancel fired mid-decode
  kPreempted,         // evicted by the scheduler for a tighter deadline
};

/// Stable lower_snake_case name ("stop_token", "deadline_exceeded", ...)
/// used in serving responses and logs.
inline const char* FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kStopToken:
      return "stop_token";
    case FinishReason::kMaxTokens:
      return "max_tokens";
    case FinishReason::kContextFull:
      return "context_full";
    case FinishReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case FinishReason::kCancelled:
      return "cancelled";
    case FinishReason::kPreempted:
      return "preempted";
  }
  return "?";
}

/// A generation and why it ended. `ids` holds whatever was decoded
/// before the stop — on deadline/cancellation that is a usable partial
/// result, not garbage.
struct GenerationResult {
  std::vector<int> ids;
  FinishReason finish = FinishReason::kMaxTokens;

  /// True when the result was cut short by deadline, cancellation or
  /// preemption.
  bool truncated() const {
    return finish == FinishReason::kDeadlineExceeded ||
           finish == FinishReason::kCancelled ||
           finish == FinishReason::kPreempted;
  }
};

/// The abort reason when `options` demand stopping now (cancellation
/// wins over deadline), or nullopt to keep decoding. Decode loops call
/// this once per token.
inline std::optional<FinishReason> CheckAbort(
    const GenerationOptions& options) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return FinishReason::kCancelled;
  }
  if (options.deadline.expired()) {
    return FinishReason::kDeadlineExceeded;
  }
  return std::nullopt;
}

/// Common interface of the paper's models (char-LSTM, word-LSTM, GPT-2
/// variants). Models are token-level: pairing with a tokenizer happens one
/// layer up (rt::Pipeline). All methods are deterministic given seeds.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  /// Short id, e.g. "char-lstm", "gpt2-medium".
  virtual std::string name() const = 0;

  /// The underlying parameter tree (for optimizers and checkpoints).
  virtual Module* module() = 0;

  /// Runs forward+backward on one batch, leaving gradients accumulated
  /// in the module parameters (the caller owns the optimizer step).
  /// Returns the mean next-token cross-entropy of the batch.
  virtual float TrainStep(const Batch& batch, Rng* dropout_rng) = 0;

  /// Mean next-token cross-entropy without touching gradients.
  virtual float EvalLoss(const Batch& batch) = 0;

  /// Continues `prompt` autoregressively; returns the newly generated
  /// ids plus why decoding stopped. Honors options.deadline and
  /// options.cancel at token granularity: an already-expired deadline
  /// returns immediately with zero tokens, and a deadline or
  /// cancellation mid-decode returns the partial result within ~one
  /// token step, leaving the model reusable.
  virtual GenerationResult Generate(const std::vector<int>& prompt,
                                    const GenerationOptions& options) = 0;

  /// Convenience wrapper: the generated ids only.
  std::vector<int> GenerateIds(const std::vector<int>& prompt,
                               const GenerationOptions& options) {
    return Generate(prompt, options).ids;
  }

  /// Deep-copies the model (configuration + current weights) into an
  /// independent instance, so concurrent serving sessions can generate
  /// in parallel while each instance stays single-threaded. Returns
  /// nullptr when the model kind does not support cloning.
  virtual std::unique_ptr<LanguageModel> Clone() { return nullptr; }

  /// An iteration-level batched decoder over this model's weights (the
  /// model must outlive it), or nullptr when the model kind does not
  /// support batched decoding. Each decoder carries its own pooled
  /// cache arena and scratch; rows stepped through it are bitwise
  /// identical to the sequential Generate path.
  virtual std::unique_ptr<BatchDecoder> MakeBatchDecoder() {
    return nullptr;
  }

  /// Vocabulary size the model was built for.
  virtual int vocab_size() const = 0;

  /// Longest sequence the model can attend over (0 = unbounded).
  virtual int max_seq_len() const { return 0; }

  /// Total trainable weights (for the device-time model).
  size_t NumParams() { return module()->NumParams(); }
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_LANGUAGE_MODEL_H_
