#ifndef RATATOUILLE_MODELS_SAMPLER_H_
#define RATATOUILLE_MODELS_SAMPLER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rt {

/// Decoding options shared by every model's generation loop.
struct SamplingOptions {
  /// Greedy argmax decoding (ignores the knobs below).
  bool greedy = false;
  /// Softmax temperature; < 1 sharpens, > 1 flattens. Must be > 0.
  float temperature = 1.0f;
  /// Keep only the k most likely tokens (0 = disabled).
  int top_k = 0;
  /// Nucleus sampling: keep the smallest set of tokens with cumulative
  /// probability >= top_p (0 = disabled).
  float top_p = 0.0f;
};

/// Draws a token id from a row of unnormalized logits according to the
/// options. Deterministic given the Rng state.
int SampleFromLogits(const float* logits, int vocab_size,
                     const SamplingOptions& options, Rng* rng);

/// Convenience overload for a 1-D / single-row tensor.
int SampleFromLogits(const Tensor& logits, const SamplingOptions& options,
                     Rng* rng);

}  // namespace rt

#endif  // RATATOUILLE_MODELS_SAMPLER_H_
