#include "models/lstm_model.h"

#include <array>
#include <cassert>

#include "tensor/cache_arena.h"
#include "tensor/kernels.h"
#include "tensor/prefix_cache.h"
#include "tensor/workspace.h"
#include "util/obs.h"

namespace rt {

LstmLm::Root::Root(const LstmConfig& config, Rng* rng)
    : embed(config.vocab_size, config.embed_dim, rng),
      lstm(config.embed_dim, config.hidden_dim, config.num_layers, rng),
      head(config.hidden_dim, config.vocab_size, rng) {
  RegisterModule("embed", &embed);
  RegisterModule("lstm", &lstm);
  RegisterModule("head", &head);
}

LstmLm::LstmLm(const LstmConfig& config)
    : config_(config),
      init_rng_(config.init_seed),
      root_(config_, &init_rng_) {}

float LstmLm::RunBatch(const Batch& batch, bool training, Rng* dropout_rng) {
  const int b = batch.batch_size;
  const int t_len = batch.seq_len;
  assert(b > 0 && t_len > 0);
  Tape tape;
  // Per-timestep id columns (the LSTM consumes time-major slices).
  std::vector<VarId> xs;
  xs.reserve(t_len);
  for (int t = 0; t < t_len; ++t) {
    std::vector<int> ids(b);
    for (int i = 0; i < b; ++i) {
      ids[i] = batch.inputs[static_cast<size_t>(i) * t_len + t];
    }
    xs.push_back(root_.embed.Forward(&tape, ids));
  }
  std::vector<LstmState> states;
  std::vector<VarId> hs = root_.lstm.Forward(&tape, xs, &states);
  VarId stacked = tape.ConcatRows(hs);  // [T*B, H], time-major
  stacked = tape.Dropout(stacked, config_.dropout, dropout_rng, training);
  VarId logits = root_.head.Forward(&tape, stacked);
  // Targets rearranged to the same time-major order.
  std::vector<int> targets(static_cast<size_t>(b) * t_len);
  for (int t = 0; t < t_len; ++t) {
    for (int i = 0; i < b; ++i) {
      targets[static_cast<size_t>(t) * b + i] =
          batch.targets[static_cast<size_t>(i) * t_len + t];
    }
  }
  VarId loss =
      tape.CrossEntropy(logits, std::move(targets), batch.ignore_index);
  const float loss_value = tape.value(loss).item();
  if (training) tape.Backward(loss);
  return loss_value;
}

float LstmLm::TrainStep(const Batch& batch, Rng* dropout_rng) {
  return RunBatch(batch, /*training=*/true, dropout_rng);
}

float LstmLm::EvalLoss(const Batch& batch) {
  Rng unused(0);
  return RunBatch(batch, /*training=*/false, &unused);
}

GenerationResult LstmLm::Generate(const std::vector<int>& prompt,
                                  const GenerationOptions& options) {
  assert(!prompt.empty());
  GenerationResult result;
  Rng rng(options.seed);
  // Tape-free decode: one packed-GEMV LSTM step per token, with all
  // scratch in a workspace arena so steady-state decoding does not heap
  // allocate (the old path grew an autograd tape per token).
  Workspace ws;
  LstmDecodeState state;
  const Tensor& embed = root_.embed.table()->value;
  const int edim = config_.embed_dim;
  const float* h = nullptr;
  // Feed the prompt, keeping only the final hidden state. Deadlines are
  // honored even here so an already-expired request does no work.
  const auto prefill_start = obs::Now();
  for (int id : prompt) {
    if (auto abort = CheckAbort(options)) {
      result.finish = *abort;
      return result;
    }
    assert(id >= 0 && id < config_.vocab_size);
    ws.Reset();
    h = root_.lstm.StepRaw(embed.data() + static_cast<size_t>(id) * edim,
                           &state, &ws);
  }
  obs::RecordSpanSince(obs::Stage::kPrefill, options.trace_id,
                       prefill_start, "prompt_tokens",
                       static_cast<long long>(prompt.size()));
  result.ids.reserve(options.max_new_tokens);
  std::vector<float> logits(config_.vocab_size);
  for (int step = 0; step < options.max_new_tokens; ++step) {
    if (auto abort = CheckAbort(options)) {
      result.finish = *abort;
      return result;
    }
    const auto sample_start = obs::Now();
    root_.head.ForwardRawTo(1, h, logits.data());
    const int cur = SampleFromLogits(logits.data(), config_.vocab_size,
                                     options.sampling, &rng);
    obs::RecordSpanSince(obs::Stage::kSample, options.trace_id,
                         sample_start);
    obs::CountSampledTokens(1);
    if (obs::ProfileEnabled()) {
      obs::KernelProfiler::Instance().CountTokens(1);
    }
    result.ids.push_back(cur);
    if (options.on_token) options.on_token(cur);
    if (cur == options.stop_token) {
      result.finish = FinishReason::kStopToken;
      return result;
    }
    ws.Reset();
    const auto step_start = obs::Now();
    h = root_.lstm.StepRaw(embed.data() + static_cast<size_t>(cur) * edim,
                           &state, &ws);
    obs::RecordSpanSince(obs::Stage::kBatchStep, options.trace_id,
                         step_start, "batch", 1);
  }
  result.finish = FinishReason::kMaxTokens;
  return result;
}

std::unique_ptr<LanguageModel> LstmLm::Clone() {
  auto copy = std::make_unique<LstmLm>(config_);
  if (!CopyParameters(root_, copy->root_).ok()) return nullptr;
  return copy;
}

/// Batched decoder over one LstmLm: each sequence's recurrent state
/// (per layer h then c) lives in one pooled arena slot, zeroed at
/// admission exactly like the fresh LstmDecodeState of the sequential
/// path. A step gathers embeddings, runs the batched LSTM stack, and
/// projects the top hidden block through the head — each row bitwise
/// matching Generate's StepRaw + ForwardRawTo(1, ...) pair.
class LstmLm::BatchDecoderImpl : public BatchDecoder {
 public:
  explicit BatchDecoderImpl(const LstmLm* model)
      : model_(model),
        arena_(model->root_.lstm.StateFloats(), /*slots_per_block=*/4) {}

  std::unique_ptr<BatchSequence> NewSequence() override {
    return std::make_unique<Sequence>(&arena_);
  }

  std::unique_ptr<BatchSequence> NewSequenceWithPrefix(
      const int* tokens, int n, int* restored) override {
    auto seq = std::make_unique<Sequence>(&arena_);
    int r = 0;
    if (prefix_cache_ != nullptr && n > 1) {
      // Cap at n-1: the last prompt token always goes through StepBatch
      // so the row has fresh sampling logits.
      r = prefix_cache_->Restore(tokens, n - 1, seq->slot());
      seq->SetLen(r);
    }
    if (restored != nullptr) *restored = r;
    return seq;
  }

  /// Prompt bulk-feed for one row: the recurrent state update without
  /// the head projection. The h/c rows written are bitwise identical to
  /// stepping token by token — the head only reads h_top.
  void PrefillSeq(BatchSequence* bseq, const int* tokens,
                  int count) override {
    auto* seq = static_cast<Sequence*>(bseq);
    const int edim = model_->config_.embed_dim;
    const int hdim = model_->root_.lstm.hidden_dim();
    for (int t = 0; t < count; ++t) {
      assert(tokens[t] >= 0 && tokens[t] < model_->config_.vocab_size);
      ws_.Reset();
      float* state_row = seq->slot();
      float* x = ws_.Alloc(static_cast<size_t>(edim));
      kernels::GatherRows(1, edim,
                          model_->root_.embed.table()->value.data(),
                          tokens + t, x);
      float* h_top = ws_.Alloc(static_cast<size_t>(hdim));
      model_->root_.lstm.StepRawBatched(1, x, &state_row, h_top, &ws_);
      seq->Advance();
    }
  }

  void PublishPrefix(BatchSequence* bseq, const int* tokens,
                     int n) override {
    auto* seq = static_cast<Sequence*>(bseq);
    if (prefix_cache_ != nullptr && seq->len() == n) {
      prefix_cache_->Publish(tokens, n, seq->slot());
    }
  }

  void EnablePrefixCache(const PrefixCacheOptions& options) override {
    prefix_cache_ = std::make_unique<PrefixKvCache>(&arena_, options);
  }

  PrefixCacheStats prefix_cache_stats() const override {
    return prefix_cache_ != nullptr ? prefix_cache_->stats()
                                    : PrefixCacheStats{};
  }

  void StepBatch(int m, const int* tokens, BatchSequence* const* seqs,
                 float* logits) override {
    assert(m >= 1 && m <= kMaxDecodeBatch);
    const int edim = model_->config_.embed_dim;
    const int hdim = model_->root_.lstm.hidden_dim();
    ws_.Reset();

    std::array<float*, kMaxDecodeBatch> state_rows;
    for (int i = 0; i < m; ++i) {
      assert(tokens[i] >= 0 && tokens[i] < model_->config_.vocab_size);
      state_rows[i] = static_cast<Sequence*>(seqs[i])->slot();
    }
    float* x = ws_.Alloc(static_cast<size_t>(m) * edim);
    kernels::GatherRows(m, edim,
                        model_->root_.embed.table()->value.data(), tokens,
                        x);
    float* h_top = ws_.Alloc(static_cast<size_t>(m) * hdim);
    model_->root_.lstm.StepRawBatched(m, x, state_rows.data(), h_top,
                                      &ws_);
    model_->root_.head.ForwardRawTo(m, h_top, logits);
    for (int i = 0; i < m; ++i) {
      static_cast<Sequence*>(seqs[i])->Advance();
    }
  }

  int vocab_size() const override { return model_->config_.vocab_size; }
  int max_context() const override { return 0; }
  int64_t arena_heap_allocs() const override {
    return arena_.heap_allocs();
  }

 private:
  class Sequence : public BatchSequence {
   public:
    explicit Sequence(CacheArena* arena)
        : arena_(arena), slot_(arena->Acquire()) {}
    ~Sequence() override { arena_->Release(slot_); }
    int len() const override { return len_; }
    float* slot() const { return slot_; }
    void Advance() { ++len_; }
    /// Adopts `n` restored state positions as already consumed.
    void SetLen(int n) { len_ = n; }

   private:
    CacheArena* arena_;
    float* slot_;
    int len_ = 0;
  };

  const LstmLm* model_;
  CacheArena arena_;
  Workspace ws_;
  std::unique_ptr<PrefixKvCache> prefix_cache_;
};

std::unique_ptr<BatchDecoder> LstmLm::MakeBatchDecoder() {
  return std::make_unique<BatchDecoderImpl>(this);
}

}  // namespace rt
