#include "models/trainer.h"

#include <fstream>

#include "nn/checkpoint.h"
#include "tensor/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rt {

Trainer::Trainer(LanguageModel* model, TrainerOptions options)
    : model_(model), options_(std::move(options)) {}

BatchIterator Trainer::MakeIterator(const TokenSource& source,
                                    uint64_t seed) const {
  if (source.stream != nullptr) {
    return BatchIterator(source.stream, options_.batch_size,
                         options_.seq_len, seed);
  }
  return BatchIterator(*source.windows, options_.batch_size,
                       options_.seq_len, seed, source.pad_id);
}

float Trainer::Evaluate(const TokenSource& source) {
  BatchIterator it = MakeIterator(source, options_.seed + 1);
  double total = 0.0;
  long long batches = 0;
  Batch batch;
  while (it.Next(&batch)) {
    total += model_->EvalLoss(batch);
    ++batches;
  }
  return batches == 0 ? 0.0f : static_cast<float>(total / batches);
}

float Trainer::Evaluate(const std::vector<int>& stream) {
  TokenSource source;
  source.stream = &stream;
  return Evaluate(source);
}

StatusOr<TrainResult> Trainer::Train(const std::vector<int>& train_stream,
                                     const std::vector<int>* val_stream) {
  TokenSource train;
  train.stream = &train_stream;
  TokenSource val;
  if (val_stream != nullptr) val.stream = val_stream;
  return Train(train, val_stream != nullptr ? &val : nullptr);
}

StatusOr<TrainResult> Trainer::Train(const TokenSource& train,
                                     const TokenSource* val) {
  if (options_.epochs <= 0) {
    return Status::InvalidArgument("epochs must be positive");
  }
  if (!train.valid() || (val != nullptr && !val->valid())) {
    return Status::InvalidArgument(
        "TokenSource must have exactly one of stream/windows");
  }
  BatchIterator it = MakeIterator(train, options_.seed);
  if (it.NumWindows() == 0) {
    return Status::InvalidArgument(
        "training source shorter than one window");
  }
  if (options_.compute_threads > 0) {
    ThreadPool::SetGlobalThreads(options_.compute_threads);
  }

  Adam optimizer(model_->module()->Parameters(),
                 {.lr = options_.lr,
                  .weight_decay = options_.weight_decay});
  const long long steps_per_epoch = it.BatchesPerEpoch();
  LrSchedule schedule{.kind = options_.schedule,
                      .base_lr = options_.lr,
                      .min_lr = options_.lr * 0.1f,
                      .warmup_steps = options_.warmup_steps,
                      .total_steps = steps_per_epoch * options_.epochs};

  TrainResult result;
  int start_epoch = 0;
  long long global_step = 0;

  // Resume from a checkpoint if one exists.
  if (!options_.checkpoint_path.empty()) {
    std::ifstream probe(options_.checkpoint_path);
    if (probe.good()) {
      probe.close();
      CheckpointMetadata meta;
      RT_RETURN_IF_ERROR(
          LoadCheckpoint(model_->module(), options_.checkpoint_path, &meta));
      start_epoch = static_cast<int>(meta.count("epoch") ? meta["epoch"] : 0);
      global_step = static_cast<long long>(
          meta.count("step") ? meta["step"] : 0);
      result.resumed = true;
      RT_LOG(Info) << model_->name() << ": resumed from "
                   << options_.checkpoint_path << " at epoch "
                   << start_epoch;
    }
  }

  Rng dropout_rng(options_.seed + 0x5eed);
  Timer timer;

  auto save = [&](int epoch) -> Status {
    if (options_.checkpoint_path.empty()) return Status::OK();
    CheckpointMetadata meta{{"epoch", static_cast<double>(epoch)},
                            {"step", static_cast<double>(global_step)},
                            {"loss", result.final_train_loss}};
    return SaveCheckpoint(model_->module(), meta, options_.checkpoint_path);
  };

  float best_val_loss = 1e30f;
  int epochs_without_improvement = 0;

  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    double epoch_loss = 0.0;
    long long epoch_batches = 0;
    Batch batch;
    it.NextEpoch();
    while (it.Next(&batch)) {
      optimizer.ZeroGrad();
      const float loss = model_->TrainStep(batch, &dropout_rng);
      if (options_.grad_clip > 0.0f) {
        ClipGradNorm(model_->module()->Parameters(), options_.grad_clip);
      }
      optimizer.set_lr(schedule.At(global_step));
      optimizer.Step();
      ++global_step;
      epoch_loss += loss;
      ++epoch_batches;
      result.final_train_loss = loss;
      result.tokens_processed +=
          static_cast<long long>(batch.batch_size) * batch.seq_len;
      if (options_.log_every > 0 && global_step % options_.log_every == 0) {
        RT_LOG(Info) << model_->name() << " step " << global_step
                     << " loss " << loss;
      }
      if (options_.checkpoint_every_steps > 0 &&
          global_step % options_.checkpoint_every_steps == 0) {
        RT_RETURN_IF_ERROR(save(epoch));
      }
      if (options_.step_callback &&
          !options_.step_callback(global_step, loss)) {
        result.aborted = true;
        result.steps = global_step;
        result.seconds = timer.ElapsedSeconds();
        return result;
      }
    }
    result.epochs_completed = epoch + 1;
    result.epoch_train_loss.push_back(
        epoch_batches == 0 ? 0.0f
                           : static_cast<float>(epoch_loss / epoch_batches));
    if (val != nullptr) {
      result.epoch_val_loss.push_back(Evaluate(*val));
    }
    // Epoch-end checkpoint records the NEXT epoch to run.
    RT_RETURN_IF_ERROR(save(epoch + 1));

    if (options_.early_stop_patience > 0 && val != nullptr) {
      const float val_loss = result.epoch_val_loss.back();
      if (val_loss < best_val_loss - 1e-5f) {
        best_val_loss = val_loss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >=
                 options_.early_stop_patience) {
        result.early_stopped = true;
        RT_LOG(Info) << model_->name() << ": early stop after epoch "
                     << epoch + 1 << " (val loss plateau)";
        break;
      }
    }
  }

  result.steps = global_step;
  result.seconds = timer.ElapsedSeconds();
  result.tokens_per_second =
      result.seconds > 0.0 ? result.tokens_processed / result.seconds : 0.0;
  return result;
}

}  // namespace rt
