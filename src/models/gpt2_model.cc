#include "models/gpt2_model.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>

#include "tensor/cache_arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/obs.h"

namespace rt {

Gpt2Config Gpt2Config::Distil(int vocab_size) {
  Gpt2Config c;
  c.vocab_size = vocab_size;
  c.dim = 48;
  c.num_layers = 2;
  c.num_heads = 3;
  c.max_seq_len = 256;
  c.name = "distilgpt2";
  return c;
}

Gpt2Config Gpt2Config::Medium(int vocab_size) {
  Gpt2Config c;
  c.vocab_size = vocab_size;
  c.dim = 128;
  c.num_layers = 4;
  c.num_heads = 4;
  c.max_seq_len = 256;
  c.name = "gpt2-medium";
  return c;
}

Gpt2Config Gpt2Config::Deep(int vocab_size) {
  Gpt2Config c;
  c.vocab_size = vocab_size;
  c.dim = 128;
  c.num_layers = 8;
  c.num_heads = 8;
  c.max_seq_len = 256;
  c.name = "gpt-deep";
  return c;
}

Gpt2Lm::Root::Root(const Gpt2Config& config, Rng* rng)
    : tok(config.vocab_size, config.dim, rng),
      pos(config.max_seq_len, config.dim, rng),
      ln_f(config.dim) {
  RegisterModule("tok", &tok);
  RegisterModule("pos", &pos);
  for (int l = 0; l < config.num_layers; ++l) {
    blocks.push_back(std::make_unique<TransformerBlock>(
        config.dim, config.num_heads, config.dropout, rng));
    RegisterModule("block" + std::to_string(l), blocks.back().get());
  }
  RegisterModule("ln_f", &ln_f);
}

Gpt2Lm::Gpt2Lm(const Gpt2Config& config)
    : config_(config),
      init_rng_(config.init_seed),
      root_(config_, &init_rng_) {
  assert(config_.vocab_size > 0);
  assert(config_.dim % config_.num_heads == 0);
}

float Gpt2Lm::RunBatch(const Batch& batch, bool training,
                       Rng* dropout_rng) {
  const int b = batch.batch_size;
  const int t_len = batch.seq_len;
  assert(t_len <= config_.max_seq_len);
  Tape tape;
  // ids and positions flattened batch-major: row index = i*T + t.
  std::vector<int> positions(static_cast<size_t>(b) * t_len);
  for (int i = 0; i < b; ++i) {
    for (int t = 0; t < t_len; ++t) {
      positions[static_cast<size_t>(i) * t_len + t] = t;
    }
  }
  VarId x = tape.Add(root_.tok.Forward(&tape, batch.inputs),
                     root_.pos.Forward(&tape, positions));
  x = tape.Dropout(x, config_.dropout, dropout_rng, training);
  for (const auto& block : root_.blocks) {
    x = block->Forward(&tape, x, b, t_len, dropout_rng, training);
  }
  x = root_.ln_f.Forward(&tape, x);
  // Weight-tied head: logits = x @ tok_table^T.
  VarId table = tape.Leaf(root_.tok.table()->value,
                          &root_.tok.table()->grad);
  VarId logits = tape.MatMulTransB(x, table);
  VarId loss =
      tape.CrossEntropy(logits, batch.targets, batch.ignore_index);
  const float loss_value = tape.value(loss).item();
  if (training) tape.Backward(loss);
  return loss_value;
}

float Gpt2Lm::TrainStep(const Batch& batch, Rng* dropout_rng) {
  return RunBatch(batch, /*training=*/true, dropout_rng);
}

float Gpt2Lm::EvalLoss(const Batch& batch) {
  Rng unused(0);
  return RunBatch(batch, /*training=*/false, &unused);
}

Tensor Gpt2Lm::ForwardLogitsRaw(const std::vector<int>& ids) const {
  assert(!ids.empty());
  const int n = static_cast<int>(ids.size());
  assert(n <= config_.max_seq_len);
  std::vector<int> positions(n);
  for (int t = 0; t < n; ++t) positions[t] = t;
  Tensor x = ops::Add(ops::EmbeddingGather(root_.tok.table()->value, ids),
                      ops::EmbeddingGather(root_.pos.table()->value,
                                           positions));
  for (const auto& block : root_.blocks) {
    x = block->ForwardRaw(x, n);
  }
  x = root_.ln_f.ForwardRaw(x);
  // Weight-tied head on the cached packed token table — bitwise
  // identical to ops::MatMulTransB, minus the per-call repack.
  Tensor logits({n, config_.vocab_size});
  HeadGemm(n, x.data(), logits.data());
  return logits;
}

const kernels::PackedB& Gpt2Lm::PackedTokTransposed() const {
  const Parameter* table = root_.tok.table();
  std::lock_guard<std::mutex> lock(pack_mutex_);
  if (packed_tok_version_ != table->version) {
    packed_tok_t_.PackTransposed(config_.vocab_size, config_.dim,
                                 table->value.data());
    packed_tok_version_ = table->version;
  }
  return packed_tok_t_;
}

const kernels::PackedBInt8& Gpt2Lm::PackedTokTransposedInt8() const {
  const Parameter* table = root_.tok.table();
  std::lock_guard<std::mutex> lock(pack_mutex_);
  if (packed_tok_int8_version_ != table->version) {
    packed_tok_t_int8_.PackTransposed(config_.vocab_size, config_.dim,
                                      table->value.data());
    packed_tok_int8_version_ = table->version;
  }
  return packed_tok_t_int8_;
}

void Gpt2Lm::HeadGemm(int m, const float* x, float* logits) const {
  if (kernels::Config().use_int8) {
    kernels::GemmPackedInt8(m, x, PackedTokTransposedInt8(), logits,
                            /*accumulate=*/false);
  } else {
    kernels::GemmPacked(m, x, PackedTokTransposed(), logits,
                        /*accumulate=*/false);
  }
}

void Gpt2Lm::InitCache(KvCache* cache) const {
  cache->keys.clear();
  cache->values.clear();
  for (int l = 0; l < config_.num_layers; ++l) {
    cache->keys.push_back(Tensor({config_.max_seq_len, config_.dim}));
    cache->values.push_back(Tensor({config_.max_seq_len, config_.dim}));
  }
  cache->len = 0;
  cache->logits = Tensor({1, config_.vocab_size});
}

const Tensor& Gpt2Lm::StepWithCache(int token, KvCache* cache) const {
  const int pos = cache->len;
  const int dim = config_.dim;
  assert(pos < config_.max_seq_len);
  assert(token >= 0 && token < config_.vocab_size);
  assert(cache->keys.size() == root_.blocks.size());
  if (cache->logits.numel() == 0) {
    cache->logits = Tensor({1, config_.vocab_size});
  }
  Workspace& ws = cache->ws;
  ws.Reset();

  // Token + position embedding rows, summed like the batched gather.
  float* x = ws.Alloc(dim);
  const float* trow =
      root_.tok.table()->value.data() + static_cast<size_t>(token) * dim;
  const float* prow =
      root_.pos.table()->value.data() + static_cast<size_t>(pos) * dim;
  for (int j = 0; j < dim; ++j) x[j] = trow[j] + prow[j];

  // Ping-pong through the blocks; all scratch comes from the arena.
  float* y = ws.Alloc(dim);
  for (size_t l = 0; l < root_.blocks.size(); ++l) {
    root_.blocks[l]->StepRaw(x, y, &cache->keys[l], &cache->values[l],
                             pos, &ws);
    std::swap(x, y);
  }
  root_.ln_f.ForwardRawRow(x, x);
  HeadGemm(1, x, cache->logits.data());
  ++cache->len;
  return cache->logits;
}

GenerationResult Gpt2Lm::BeamSearch(const std::vector<int>& prompt,
                                    const BeamOptions& options) const {
  assert(!prompt.empty());
  assert(options.beam_width >= 1);

  // Deadline/cancel polling shared by the prompt and step loops.
  const auto check_abort = [&options]() -> std::optional<FinishReason> {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return FinishReason::kCancelled;
    }
    if (options.deadline.expired()) {
      return FinishReason::kDeadlineExceeded;
    }
    return std::nullopt;
  };

  struct Beam {
    KvCache cache;  // cache.logits holds the last processed token's row
    std::vector<int> tokens;  // generated so far
    double log_prob = 0.0;
    bool finished = false;
    FinishReason end = FinishReason::kMaxTokens;  // valid when finished
  };
  auto norm_score = [&](const Beam& b) {
    const double len = std::max<size_t>(b.tokens.size(), 1);
    return options.length_penalty > 0.0f
               ? b.log_prob / std::pow(len, options.length_penalty)
               : b.log_prob;
  };

  // Seed beam: run the prompt once.
  Beam seed;
  InitCache(&seed.cache);
  for (int id : prompt) {
    if (auto abort = check_abort()) {
      GenerationResult result;
      result.finish = *abort;
      return result;
    }
    if (seed.cache.len >= config_.max_seq_len) break;
    StepWithCache(id, &seed.cache);
  }
  std::vector<Beam> beams;
  beams.push_back(std::move(seed));

  std::optional<FinishReason> aborted;
  for (int step = 0; step < options.max_new_tokens; ++step) {
    if ((aborted = check_abort())) break;
    struct Candidate {
      size_t beam_index;
      int token;
      double log_prob;
    };
    std::vector<Candidate> candidates;
    bool any_alive = false;
    for (size_t bi = 0; bi < beams.size(); ++bi) {
      Beam& beam = beams[bi];
      if (beam.finished || beam.cache.len >= config_.max_seq_len) {
        if (!beam.finished) beam.end = FinishReason::kContextFull;
        beam.finished = true;
        continue;
      }
      any_alive = true;
      const Tensor lp = ops::LogSoftmaxRows(beam.cache.logits.Reshaped(
          {1, static_cast<int>(beam.cache.logits.numel())}));
      // Top beam_width continuations of this beam.
      std::vector<int> order(lp.numel());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      const int keep =
          std::min<int>(options.beam_width, static_cast<int>(order.size()));
      std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                        [&](int a, int b) { return lp[a] > lp[b]; });
      for (int k = 0; k < keep; ++k) {
        candidates.push_back(
            {bi, order[k], beams[bi].log_prob + lp[order[k]]});
      }
    }
    if (!any_alive) break;

    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.log_prob > b.log_prob;
                     });
    const size_t expand = std::min<size_t>(
        candidates.size(), static_cast<size_t>(options.beam_width));

    std::vector<Beam> next;
    // Finished beams survive as-is, competing on normalized score.
    for (Beam& beam : beams) {
      if (beam.finished) next.push_back(std::move(beam));
    }
    for (size_t c = 0; c < expand; ++c) {
      const Candidate& cand = candidates[c];
      Beam child;
      child.cache = beams[cand.beam_index].cache;  // deep copy
      child.tokens = beams[cand.beam_index].tokens;
      child.tokens.push_back(cand.token);
      child.log_prob = cand.log_prob;
      if (cand.token == options.stop_token) {
        child.finished = true;
        child.end = FinishReason::kStopToken;
      } else if (child.cache.len >= config_.max_seq_len) {
        child.finished = true;
        child.end = FinishReason::kContextFull;
      } else {
        StepWithCache(cand.token, &child.cache);
      }
      next.push_back(std::move(child));
    }
    // Keep the global top beams by normalized score.
    std::stable_sort(next.begin(), next.end(),
                     [&](const Beam& a, const Beam& b) {
                       return norm_score(a) > norm_score(b);
                     });
    if (next.size() > static_cast<size_t>(options.beam_width)) {
      next.resize(options.beam_width);
    }
    beams = std::move(next);
    bool all_done = true;
    for (const Beam& beam : beams) all_done = all_done && beam.finished;
    if (all_done) break;
  }

  const Beam* best = &beams[0];
  for (const Beam& beam : beams) {
    if (norm_score(beam) > norm_score(*best)) best = &beam;
  }
  GenerationResult result;
  result.ids = best->tokens;
  result.finish = aborted ? *aborted
                          : (best->finished ? best->end
                                            : FinishReason::kMaxTokens);
  return result;
}

GenerationResult Gpt2Lm::Generate(const std::vector<int>& prompt,
                                  const GenerationOptions& options) {
  assert(!prompt.empty());
  if (options.beam_width > 0) {
    BeamOptions beam;
    beam.beam_width = options.beam_width;
    beam.max_new_tokens = options.max_new_tokens;
    beam.stop_token = options.stop_token;
    beam.length_penalty = options.beam_length_penalty;
    beam.deadline = options.deadline;
    beam.cancel = options.cancel;
    return BeamSearch(prompt, beam);
  }
  GenerationResult result;
  Rng rng(options.seed);
  result.ids.reserve(options.max_new_tokens);

  if (use_kv_cache_) {
    KvCache cache;
    InitCache(&cache);
    const auto prefill_start = obs::Now();
    for (int id : prompt) {
      if (auto abort = CheckAbort(options)) {
        result.finish = *abort;
        return result;
      }
      if (cache.len >= config_.max_seq_len) break;
      StepWithCache(id, &cache);
    }
    obs::RecordSpanSince(obs::Stage::kPrefill, options.trace_id,
                         prefill_start, "prompt_tokens",
                         static_cast<long long>(prompt.size()));
    for (int step = 0; step < options.max_new_tokens; ++step) {
      if (auto abort = CheckAbort(options)) {
        result.finish = *abort;
        return result;
      }
      const auto sample_start = obs::Now();
      int next = SampleFromLogits(cache.logits, options.sampling, &rng);
      obs::RecordSpanSince(obs::Stage::kSample, options.trace_id,
                           sample_start);
      obs::CountSampledTokens(1);
      if (obs::ProfileEnabled()) {
        obs::KernelProfiler::Instance().CountTokens(1);
      }
      result.ids.push_back(next);
      if (options.on_token) options.on_token(next);
      if (next == options.stop_token) {
        result.finish = FinishReason::kStopToken;
        return result;
      }
      if (cache.len >= config_.max_seq_len) {
        result.finish = FinishReason::kContextFull;
        return result;
      }
      const auto step_start = obs::Now();
      StepWithCache(next, &cache);
      obs::RecordSpanSince(obs::Stage::kBatchStep, options.trace_id,
                           step_start, "batch", 1);
    }
    result.finish = FinishReason::kMaxTokens;
    return result;
  }

  // Naive path: re-encode the full sequence for each new token.
  std::vector<int> seq = prompt;
  for (int step = 0; step < options.max_new_tokens; ++step) {
    if (auto abort = CheckAbort(options)) {
      result.finish = *abort;
      return result;
    }
    // Respect the context window by keeping the trailing tokens.
    std::vector<int> window = seq;
    if (static_cast<int>(window.size()) > config_.max_seq_len) {
      window.assign(seq.end() - config_.max_seq_len, seq.end());
    }
    Tensor logits = ForwardLogitsRaw(window);
    const int last = logits.rows() - 1;
    int next = SampleFromLogits(
        logits.data() + static_cast<size_t>(last) * logits.cols(),
        logits.cols(), options.sampling, &rng);
    result.ids.push_back(next);
    if (options.on_token) options.on_token(next);
    if (next == options.stop_token) {
      result.finish = FinishReason::kStopToken;
      return result;
    }
    seq.push_back(next);
  }
  result.finish = FinishReason::kMaxTokens;
  return result;
}

std::unique_ptr<LanguageModel> Gpt2Lm::Clone() {
  auto copy = std::make_unique<Gpt2Lm>(config_);
  copy->use_kv_cache_ = use_kv_cache_;
  if (!CopyParameters(root_, copy->root_).ok()) return nullptr;
  return copy;
}

/// Batched decoder over one Gpt2Lm: each sequence's per-layer KV planes
/// live in one pooled arena slot (layer-major, K plane then V plane,
/// [max_seq_len, dim] each), so admission is a freelist pop and a step
/// only gathers row pointers. The step mirrors StepWithCache exactly —
/// same embedding sum, block sweep, final LayerNorm and weight-tied
/// head — with the GEMMs batched m rows at a time.
class Gpt2Lm::BatchDecoderImpl : public BatchDecoder {
 public:
  explicit BatchDecoderImpl(const Gpt2Lm* model)
      : model_(model),
        plane_(static_cast<size_t>(model->config_.max_seq_len) *
               model->config_.dim),
        arena_(static_cast<size_t>(2) * model->config_.num_layers *
                   plane_,
               /*slots_per_block=*/4) {}

  std::unique_ptr<BatchSequence> NewSequence() override {
    return std::make_unique<Sequence>(&arena_);
  }

  std::unique_ptr<BatchSequence> NewSequenceWithPrefix(
      const int* tokens, int n, int* restored) override {
    auto seq = std::make_unique<Sequence>(&arena_);
    int r = 0;
    if (prefix_cache_ != nullptr && n > 1) {
      // Cap at n-1: the last prompt token always goes through StepBatch
      // so the row has fresh sampling logits.
      r = prefix_cache_->Restore(tokens, n - 1, seq->slot());
      seq->SetLen(r);
    }
    if (restored != nullptr) *restored = r;
    return seq;
  }

  /// Prompt bulk-feed for one row: the same embedding sum and block
  /// sweep as StepBatch, minus the final LayerNorm and logits head —
  /// those read state but never write it, so skipping them leaves the
  /// KV planes bitwise identical to stepping token by token.
  void PrefillSeq(BatchSequence* bseq, const int* tokens,
                  int count) override {
    auto* seq = static_cast<Sequence*>(bseq);
    const Gpt2Config& config = model_->config_;
    const int dim = config.dim;
    for (int t = 0; t < count; ++t) {
      assert(seq->len() < config.max_seq_len);
      assert(tokens[t] >= 0 && tokens[t] < config.vocab_size);
      ws_.Reset();
      int position = seq->len();
      float* x = ws_.Alloc(static_cast<size_t>(dim));
      kernels::GatherRows(1, dim, model_->root_.tok.table()->value.data(),
                          tokens + t, x);
      kernels::GatherAddRows(1, dim,
                             model_->root_.pos.table()->value.data(),
                             &position, x);
      float* y = ws_.Alloc(static_cast<size_t>(dim));
      for (size_t l = 0; l < model_->root_.blocks.size(); ++l) {
        float* k_row = seq->slot() + 2 * plane_ * l;
        float* v_row = k_row + plane_;
        model_->root_.blocks[l]->StepRawBatched(
            1, x, y, &k_row, &v_row, &position, config.max_seq_len,
            &ws_);
        std::swap(x, y);
      }
      seq->Advance();
    }
  }

  void PublishPrefix(BatchSequence* bseq, const int* tokens,
                     int n) override {
    auto* seq = static_cast<Sequence*>(bseq);
    // Only a slot holding exactly the prefill of tokens[0..n) is a
    // valid snapshot for that key.
    if (prefix_cache_ != nullptr && seq->len() == n) {
      prefix_cache_->Publish(tokens, n, seq->slot());
    }
  }

  void EnablePrefixCache(const PrefixCacheOptions& options) override {
    prefix_cache_ = std::make_unique<PrefixKvCache>(&arena_, options);
  }

  PrefixCacheStats prefix_cache_stats() const override {
    return prefix_cache_ != nullptr ? prefix_cache_->stats()
                                    : PrefixCacheStats{};
  }

  void StepBatch(int m, const int* tokens, BatchSequence* const* seqs,
                 float* logits) override {
    assert(m >= 1 && m <= kMaxDecodeBatch);
    const Gpt2Config& config = model_->config_;
    const int dim = config.dim;
    ws_.Reset();

    std::array<int, kMaxDecodeBatch> positions;
    std::array<float*, kMaxDecodeBatch> slots;
    for (int i = 0; i < m; ++i) {
      auto* seq = static_cast<Sequence*>(seqs[i]);
      assert(seq->len() < config.max_seq_len);
      assert(tokens[i] >= 0 && tokens[i] < config.vocab_size);
      positions[i] = seq->len();
      slots[i] = seq->slot();
    }

    // Token + position embedding rows, summed like StepWithCache.
    float* x = ws_.Alloc(static_cast<size_t>(m) * dim);
    kernels::GatherRows(m, dim, model_->root_.tok.table()->value.data(),
                        tokens, x);
    kernels::GatherAddRows(m, dim,
                           model_->root_.pos.table()->value.data(),
                           positions.data(), x);

    float* y = ws_.Alloc(static_cast<size_t>(m) * dim);
    std::array<float*, kMaxDecodeBatch> k_rows;
    std::array<float*, kMaxDecodeBatch> v_rows;
    for (size_t l = 0; l < model_->root_.blocks.size(); ++l) {
      for (int i = 0; i < m; ++i) {
        k_rows[i] = slots[i] + 2 * plane_ * l;
        v_rows[i] = k_rows[i] + plane_;
      }
      model_->root_.blocks[l]->StepRawBatched(
          m, x, y, k_rows.data(), v_rows.data(), positions.data(),
          config.max_seq_len, &ws_);
      std::swap(x, y);
    }
    for (int i = 0; i < m; ++i) {
      float* row = x + static_cast<size_t>(i) * dim;
      model_->root_.ln_f.ForwardRawRow(row, row);
    }
    model_->HeadGemm(m, x, logits);
    for (int i = 0; i < m; ++i) {
      static_cast<Sequence*>(seqs[i])->Advance();
    }
  }

  int vocab_size() const override { return model_->config_.vocab_size; }
  int max_context() const override { return model_->config_.max_seq_len; }
  int64_t arena_heap_allocs() const override {
    return arena_.heap_allocs();
  }

 private:
  class Sequence : public BatchSequence {
   public:
    explicit Sequence(CacheArena* arena)
        : arena_(arena), slot_(arena->Acquire()) {}
    ~Sequence() override { arena_->Release(slot_); }
    int len() const override { return len_; }
    float* slot() const { return slot_; }
    void Advance() { ++len_; }
    /// Adopts `n` restored cache positions as already consumed.
    void SetLen(int n) { len_ = n; }

   private:
    CacheArena* arena_;
    float* slot_;
    int len_ = 0;
  };

  const Gpt2Lm* model_;
  size_t plane_;  // floats per KV plane: max_seq_len * dim
  CacheArena arena_;
  Workspace ws_;
  std::unique_ptr<PrefixKvCache> prefix_cache_;
};

std::unique_ptr<BatchDecoder> Gpt2Lm::MakeBatchDecoder() {
  return std::make_unique<BatchDecoderImpl>(this);
}

}  // namespace rt
