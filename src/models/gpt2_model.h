#ifndef RATATOUILLE_MODELS_GPT2_MODEL_H_
#define RATATOUILLE_MODELS_GPT2_MODEL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/language_model.h"
#include "nn/layers.h"
#include "tensor/kernels.h"
#include "tensor/workspace.h"

namespace rt {

/// GPT-2 configuration (paper Sec. IV-B). The paper's DistilGPT2 and
/// GPT-2-medium become two config points of the same architecture with
/// the real models' relative capacity ordering preserved at CPU scale.
struct Gpt2Config {
  int vocab_size = 0;
  int dim = 64;
  int num_layers = 2;
  int num_heads = 2;
  int max_seq_len = 128;
  float dropout = 0.1f;
  uint64_t init_seed = 1;
  std::string name = "gpt2";

  /// Scaled-down DistilGPT2 (6 layers in the original; shallow/narrow
  /// relative to medium here).
  static Gpt2Config Distil(int vocab_size);
  /// Scaled-down GPT-2 medium (24 layers/1024 dim in the original;
  /// deeper/wider relative to distil here).
  static Gpt2Config Medium(int vocab_size);
  /// Deeper "GPT-Neo-style" config point (paper's named future work).
  static Gpt2Config Deep(int vocab_size);
};

/// GPT-2-style decoder-only transformer LM: token+position embeddings,
/// pre-LN causal self-attention blocks, final LayerNorm, and a weight-tied
/// output head (logits = x @ token_table^T).
///
/// Training runs through the autograd tape; generation uses a raw
/// inference path with a per-layer KV cache (use_kv_cache option) or a
/// naive re-encode loop, which the latency ablation compares.
class Gpt2Lm : public LanguageModel {
 public:
  explicit Gpt2Lm(const Gpt2Config& config);

  std::string name() const override { return config_.name; }
  Module* module() override { return &root_; }
  int vocab_size() const override { return config_.vocab_size; }
  int max_seq_len() const override { return config_.max_seq_len; }

  float TrainStep(const Batch& batch, Rng* dropout_rng) override;
  float EvalLoss(const Batch& batch) override;
  GenerationResult Generate(const std::vector<int>& prompt,
                            const GenerationOptions& options) override;
  std::unique_ptr<LanguageModel> Clone() override;
  std::unique_ptr<BatchDecoder> MakeBatchDecoder() override;

  /// Toggles the KV-cache fast path for GenerateIds (default on). The
  /// naive path re-encodes the whole sequence per new token.
  void set_use_kv_cache(bool on) { use_kv_cache_ = on; }
  bool use_kv_cache() const { return use_kv_cache_; }

  const Gpt2Config& config() const { return config_; }

  /// Raw (no-tape) forward of a full id sequence; returns logits [n, V].
  /// Exposed for perplexity evaluation and tests.
  Tensor ForwardLogitsRaw(const std::vector<int>& ids) const;

  /// Beam-search decoding options.
  struct BeamOptions {
    int beam_width = 4;
    int max_new_tokens = 220;
    int stop_token = -1;
    /// Google-NMT style length normalization exponent; 0 disables.
    float length_penalty = 0.6f;
    /// Checked once per beam step; expiry returns the best beam so far.
    Deadline deadline;
    /// Cooperative cancellation, polled alongside the deadline.
    std::shared_ptr<const CancelToken> cancel;
  };

  /// Deterministic beam-search decoding over the KV-cache path. Returns
  /// the highest-scoring completion so far (new ids only, including the
  /// stop token when emitted) plus why the search stopped — deadline or
  /// cancellation mid-search yields the best partial beam.
  GenerationResult BeamSearch(const std::vector<int>& prompt,
                              const BeamOptions& options) const;

  /// Convenience wrapper: the winning beam's ids only.
  std::vector<int> BeamSearchIds(const std::vector<int>& prompt,
                                 const BeamOptions& options) const {
    return BeamSearch(prompt, options).ids;
  }

  /// Per-layer cached keys/values for incremental decoding, plus the
  /// decode scratch arena and the logits row the step path writes into.
  /// Copying a cache (beam search) deep-copies the tensors but starts
  /// the copy with a fresh, empty workspace.
  struct KvCache {
    // Each [max_seq_len, dim]; `len` rows are valid.
    std::vector<Tensor> keys;
    std::vector<Tensor> values;
    int len = 0;
    Workspace ws;
    Tensor logits;  // [1, vocab], rewritten by every step
  };

  /// Sizes `cache` for this model (len reset to 0).
  void InitCache(KvCache* cache) const;

  /// Appends one token at position `cache->len`; returns the logits row
  /// [1, V], which lives in `cache->logits` (valid until the next step
  /// on the same cache). Heap-allocation-free once the cache's
  /// workspace has warmed up.
  const Tensor& StepWithCache(int token, KvCache* cache) const;

 private:
  class BatchDecoderImpl;  // gpt2_model.cc; nested for weight access

  class Root : public Module {
   public:
    Root(const Gpt2Config& config, Rng* rng);
    Embedding tok;
    Embedding pos;
    std::vector<std::unique_ptr<TransformerBlock>> blocks;
    LayerNorm ln_f;
  };

  float RunBatch(const Batch& batch, bool training, Rng* dropout_rng);

  /// The token table packed column-major for the weight-tied head
  /// (logits = x @ table^T), refreshed lazily per parameter version.
  const kernels::PackedB& PackedTokTransposed() const;

  /// Int8 twin: per-vocabulary-row symmetric quantization (each vocab
  /// entry is an output channel of the tied head), refreshed lazily per
  /// parameter version.
  const kernels::PackedBInt8& PackedTokTransposedInt8() const;

  /// The weight-tied head GEMM for m rows, dispatching fp32/int8 packed
  /// panels per kernels::Config().use_int8.
  void HeadGemm(int m, const float* x, float* logits) const;

  Gpt2Config config_;
  Rng init_rng_;
  Root root_;
  bool use_kv_cache_ = true;
  mutable kernels::PackedB packed_tok_t_;
  mutable uint64_t packed_tok_version_ = ~0ull;
  mutable kernels::PackedBInt8 packed_tok_t_int8_;
  mutable uint64_t packed_tok_int8_version_ = ~0ull;
  mutable std::mutex pack_mutex_;
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_GPT2_MODEL_H_
