#ifndef RATATOUILLE_MODELS_TRAINER_H_
#define RATATOUILLE_MODELS_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "models/language_model.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "util/status.h"

namespace rt {

/// Training-loop options.
struct TrainerOptions {
  int epochs = 1;
  int batch_size = 8;
  int seq_len = 64;
  float lr = 3e-3f;
  float grad_clip = 1.0f;  // <= 0 disables
  float weight_decay = 0.0f;
  ScheduleKind schedule = ScheduleKind::kConstant;
  long long warmup_steps = 0;
  uint64_t seed = 7;
  /// Empty = no checkpointing. Otherwise a file path; the trainer saves
  /// every `checkpoint_every_steps` steps and at each epoch end, and
  /// Train() resumes from it when it exists (the paper's Colab sessions
  /// crashed every 5-7 epochs; resume is a first-class feature).
  std::string checkpoint_path;
  int checkpoint_every_steps = 0;
  /// Log training loss every N steps (0 = silent).
  int log_every = 0;
  /// Stop after this many consecutive epochs without validation-loss
  /// improvement (0 = disabled; requires a validation source).
  int early_stop_patience = 0;
  /// Invoked after every optimizer step; return false to abort training
  /// (used by fault-injection tests to simulate crashes).
  std::function<bool(long long step, float loss)> step_callback;
  /// Intra-op compute threads for the shared kernel pool (0 = leave the
  /// process-wide setting untouched).
  int compute_threads = 0;
};

/// Summary of a training run.
struct TrainResult {
  long long steps = 0;
  int epochs_completed = 0;
  float final_train_loss = 0.0f;
  std::vector<float> epoch_train_loss;  // mean loss per completed epoch
  std::vector<float> epoch_val_loss;    // per epoch, if val stream given
  double seconds = 0.0;
  double tokens_per_second = 0.0;
  long long tokens_processed = 0;
  bool resumed = false;
  bool aborted = false;        // step_callback requested stop
  bool early_stopped = false;  // validation loss plateaued
};

/// A training-data source: either a flat token stream (sliced into
/// contiguous windows, LSTM-style) or per-document windows from
/// BuildRecipeWindows (GPT-2-style; padding excluded from the loss).
struct TokenSource {
  const std::vector<int>* stream = nullptr;
  const std::vector<std::vector<int>>* windows = nullptr;
  int pad_id = 0;

  bool valid() const { return (stream != nullptr) != (windows != nullptr); }
};

/// Drives next-token training of any LanguageModel with Adam, gradient
/// clipping, LR scheduling and crash-safe checkpointing.
class Trainer {
 public:
  Trainer(LanguageModel* model, TrainerOptions options);

  /// Trains on `train`; evaluates on `val` after each epoch when
  /// non-null. Resumes from options.checkpoint_path if present.
  StatusOr<TrainResult> Train(const TokenSource& train,
                              const TokenSource* val = nullptr);

  /// Stream-source convenience overload.
  StatusOr<TrainResult> Train(const std::vector<int>& train_stream,
                              const std::vector<int>* val_stream = nullptr);

  /// Mean loss of the model over a source (no gradient updates).
  float Evaluate(const TokenSource& source);
  float Evaluate(const std::vector<int>& stream);

 private:
  /// Builds a fresh iterator over `source` for one pass.
  BatchIterator MakeIterator(const TokenSource& source, uint64_t seed) const;

  LanguageModel* model_;
  TrainerOptions options_;
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_TRAINER_H_
