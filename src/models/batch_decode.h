#ifndef RATATOUILLE_MODELS_BATCH_DECODE_H_
#define RATATOUILLE_MODELS_BATCH_DECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/prefix_cache.h"

namespace rt {

/// Upper bound on rows per batched decode step. Keeps the per-step
/// pointer/position arrays on the stack, so a step never heap-allocates
/// regardless of batch size.
inline constexpr int kMaxDecodeBatch = 64;

/// One decoding sequence's pooled model state inside a BatchDecoder —
/// per-layer KV-cache planes for the GPT-2 family, recurrent h/c rows
/// for the LSTMs. Created at admission; destroying it returns the
/// pooled cache slot to the decoder's arena.
class BatchSequence {
 public:
  virtual ~BatchSequence() = default;

  /// Model positions consumed so far (tokens fed through StepBatch).
  virtual int len() const = 0;
};

/// Iteration-level batched decoding over one model instance: each
/// StepBatch call advances every included sequence by exactly one
/// token, so a scheduler can admit and evict sequences between
/// iterations (continuous batching). Not thread-safe — the owning
/// scheduler calls it from a single thread.
class BatchDecoder {
 public:
  virtual ~BatchDecoder() = default;

  /// A fresh zero-length sequence backed by a pooled cache slot.
  virtual std::unique_ptr<BatchSequence> NewSequence() = 0;

  /// Like NewSequence(), but first restores the longest cached prefix
  /// of tokens[0..n) from the decoder's shared-prefix KV cache into
  /// the fresh slot, reporting how many positions were restored via
  /// *restored (0 on a miss or when no cache is enabled). The restored
  /// state is bitwise identical to prefilling those tokens, so the
  /// caller resumes feeding at tokens[*restored].
  virtual std::unique_ptr<BatchSequence> NewSequenceWithPrefix(
      const int* tokens, int n, int* restored) {
    (void)tokens;
    (void)n;
    if (restored != nullptr) *restored = 0;
    return NewSequence();
  }

  /// Feeds tokens[0..count) through the model for `seq` alone,
  /// advancing its cache state. Implementations may skip the logits
  /// head — prefill only needs the cache writes — but the state after
  /// PrefillSeq must stay bitwise identical to feeding the same tokens
  /// through StepBatch one at a time. The base implementation does
  /// exactly that, into scratch logits.
  virtual void PrefillSeq(BatchSequence* seq, const int* tokens, int count) {
    std::vector<float> scratch(static_cast<size_t>(vocab_size()));
    for (int i = 0; i < count; ++i) {
      BatchSequence* row = seq;
      StepBatch(1, tokens + i, &row, scratch.data());
    }
  }

  /// Publishes seq's current cache state as the prefill result for
  /// exactly tokens[0..n), making it restorable by later sequences.
  /// No-op without an enabled prefix cache.
  virtual void PublishPrefix(BatchSequence* seq, const int* tokens, int n) {
    (void)seq;
    (void)tokens;
    (void)n;
  }

  /// Installs a shared-prefix KV cache over the decoder's arena.
  /// No-op for decoders without cache support.
  virtual void EnablePrefixCache(const PrefixCacheOptions& options) {
    (void)options;
  }

  /// Prefix-cache counters; all zeros when no cache is enabled.
  virtual PrefixCacheStats prefix_cache_stats() const { return {}; }

  /// Feeds tokens[i] — the next input token of seqs[i] — through one
  /// batched model step and writes each row's next-token logits to
  /// logits + i * vocab_size(). m must be in [1, kMaxDecodeBatch] and
  /// every seqs[i] must come from this decoder with len() below
  /// max_context() (when bounded). Row i is bitwise identical to the
  /// sequential single-sequence step on the same state, for any m and
  /// any mix of co-scheduled rows — the batch-invariance contract the
  /// parity tests pin down.
  virtual void StepBatch(int m, const int* tokens,
                         BatchSequence* const* seqs, float* logits) = 0;

  /// Vocabulary size (the width of one logits row).
  virtual int vocab_size() const = 0;

  /// Longest sequence a row can reach, 0 when unbounded (LSTMs).
  virtual int max_context() const = 0;

  /// Heap allocations charged to the pooled cache arena so far. Flat
  /// across steady-state admit/evict churn once the pool covers the
  /// peak concurrent sequence count.
  virtual int64_t arena_heap_allocs() const = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_MODELS_BATCH_DECODE_H_
