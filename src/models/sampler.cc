#include "models/sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rt {

int SampleFromLogits(const float* logits, int vocab_size,
                     const SamplingOptions& options, Rng* rng) {
  assert(vocab_size > 0);
  if (options.greedy) {
    int best = 0;
    for (int i = 1; i < vocab_size; ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    return best;
  }
  assert(options.temperature > 0.0f);

  // Softmax with temperature (stable).
  std::vector<double> probs(vocab_size);
  float mx = logits[0];
  for (int i = 1; i < vocab_size; ++i) mx = std::max(mx, logits[i]);
  double sum = 0.0;
  for (int i = 0; i < vocab_size; ++i) {
    probs[i] = std::exp((logits[i] - mx) / options.temperature);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;

  // Candidate ids sorted by probability (descending) for top-k / top-p.
  std::vector<int> order(vocab_size);
  std::iota(order.begin(), order.end(), 0);
  const bool needs_sort = options.top_k > 0 || options.top_p > 0.0f;
  if (needs_sort) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return probs[a] > probs[b];
    });
  }

  int keep = vocab_size;
  if (options.top_k > 0) keep = std::min(keep, options.top_k);
  if (options.top_p > 0.0f) {
    double cum = 0.0;
    int nucleus = 0;
    for (int i = 0; i < keep; ++i) {
      cum += probs[order[i]];
      ++nucleus;
      if (cum >= options.top_p) break;
    }
    keep = nucleus;
  }

  // Renormalize over the kept set and draw.
  double kept_mass = 0.0;
  for (int i = 0; i < keep; ++i) kept_mass += probs[order[i]];
  double target = rng->NextDouble() * kept_mass;
  double acc = 0.0;
  for (int i = 0; i < keep; ++i) {
    acc += probs[order[i]];
    if (target < acc) return order[i];
  }
  return order[keep - 1];
}

int SampleFromLogits(const Tensor& logits, const SamplingOptions& options,
                     Rng* rng) {
  return SampleFromLogits(logits.data(),
                          static_cast<int>(logits.numel()), options, rng);
}

}  // namespace rt
