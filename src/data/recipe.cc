#include "data/recipe.h"

#include <cctype>
#include <set>

#include "text/special_tokens.h"
#include "util/strings.h"

namespace rt {

std::string IngredientLine::Render() const {
  std::string out;
  if (!quantity.empty()) {
    out += quantity;
    out += ' ';
  }
  if (!unit.empty()) {
    out += unit;
    out += ' ';
  }
  out += name;
  if (!prep.empty()) {
    out += " , ";
    out += prep;
  }
  return out;
}

bool Recipe::IsComplete() const {
  return !title.empty() && !ingredients.empty() && !instructions.empty();
}

std::vector<std::string> Recipe::IngredientNames() const {
  std::vector<std::string> names;
  names.reserve(ingredients.size());
  for (const auto& line : ingredients) names.push_back(line.name);
  return names;
}

std::string Recipe::ToTaggedString(bool with_input) const {
  std::string out = kRecipeStart;
  if (with_input) {
    out += ' ';
    out += kInputStart;
    const auto names = IngredientNames();
    for (size_t i = 0; i < names.size(); ++i) {
      out += ' ';
      out += names[i];
      if (i + 1 < names.size()) {
        out += ' ';
        out += kInputNext;
      }
    }
    out += ' ';
    out += kInputEnd;
  }
  out += ' ';
  out += kIngrStart;
  for (size_t i = 0; i < ingredients.size(); ++i) {
    out += ' ';
    out += ingredients[i].Render();
    if (i + 1 < ingredients.size()) {
      out += ' ';
      out += kIngrNext;
    }
  }
  out += ' ';
  out += kIngrEnd;
  out += ' ';
  out += kInstrStart;
  for (size_t i = 0; i < instructions.size(); ++i) {
    out += ' ';
    out += instructions[i];
    if (i + 1 < instructions.size()) {
      out += ' ';
      out += kInstrNext;
    }
  }
  out += ' ';
  out += kInstrEnd;
  out += ' ';
  out += kTitleStart;
  out += ' ';
  out += title;
  out += ' ';
  out += kTitleEnd;
  out += ' ';
  out += kRecipeEnd;
  return NormalizeFractions(out);
}

std::string Recipe::PromptPrefix() const {
  std::string out = kRecipeStart;
  out += ' ';
  out += kInputStart;
  const auto names = IngredientNames();
  for (size_t i = 0; i < names.size(); ++i) {
    out += ' ';
    out += names[i];
    if (i + 1 < names.size()) {
      out += ' ';
      out += kInputNext;
    }
  }
  out += ' ';
  out += kInputEnd;
  out += ' ';
  out += kIngrStart;
  return out;
}

std::string Recipe::ToRawString() const {
  std::string out = title;
  out += "\n\nIngredients:\n";
  for (const auto& line : ingredients) {
    out += "- ";
    out += line.Render();
    out += '\n';
  }
  out += "\n";
  for (size_t i = 0; i < instructions.size(); ++i) {
    if (i > 0) out += ' ';
    out += instructions[i];
    out += " .";
  }
  out += '\n';
  return out;
}

size_t Recipe::TaggedLength() const { return ToTaggedString().size(); }

namespace {

// Extracts the text between `open` and `close` tags; empty if missing.
std::string Section(const std::string& s, const char* open,
                    const char* close) {
  size_t a = s.find(open);
  if (a == std::string::npos) return "";
  a += std::string(open).size();
  size_t b = s.find(close, a);
  if (b == std::string::npos) b = s.size();
  return Trim(s.substr(a, b - a));
}

// Model output can embed stray structural tags inside a section (e.g. an
// <INSTR_START> in the middle of an instruction from an undertrained
// sampler). Strip them so parse(serialize(parse(x))) is stable.
std::string StripStructuralTags(const std::string& text) {
  std::string out = text;
  for (const std::string& tag : StructuralTags()) {
    out = ReplaceAll(out, tag, " ");
  }
  return Join(SplitWhitespace(out), " ");
}

IngredientLine ParseIngredientLine(const std::string& text) {
  IngredientLine line;
  // Grammar: [quantity] [unit] name [, prep]. Quantity tokens are digits
  // or fraction literals; unit is a known-ish single word; we parse
  // permissively since model output may be malformed.
  std::string work = Trim(text);
  size_t comma = work.find(" , ");
  if (comma != std::string::npos) {
    line.prep = Trim(work.substr(comma + 3));
    work = Trim(work.substr(0, comma));
  }
  std::vector<std::string> toks = SplitWhitespace(work);
  size_t i = 0;
  auto is_quantityish = [](const std::string& t) {
    if (t.empty()) return false;
    for (char c : t) {
      if (!std::isdigit(static_cast<unsigned char>(c)) && c != '/') {
        return false;
      }
    }
    return true;
  };
  std::string qty;
  while (i < toks.size() && is_quantityish(toks[i])) {
    if (!qty.empty()) qty += ' ';
    qty += toks[i];
    ++i;
  }
  line.quantity = qty;
  // A token is only consumed as a unit when it belongs to the closed
  // measure vocabulary the catalog can emit; otherwise unit-less
  // multi-word names ("bay leaf", "bell pepper") keep their first word.
  auto is_unit = [](const std::string& t) {
    static const std::set<std::string> kUnits = {
        "can",   "clove", "cup",  "pinch", "pound",
        "sprig", "stalk", "tbsp", "tsp"};
    if (kUnits.count(t) > 0) return true;
    // Accept plural measures ("cups", "cloves") from model output.
    return t.size() > 1 && t.back() == 's' &&
           kUnits.count(t.substr(0, t.size() - 1)) > 0;
  };
  if (toks.size() - i >= 2 && !qty.empty() && is_unit(toks[i])) {
    line.unit = toks[i];
    ++i;
  }
  std::string name;
  for (; i < toks.size(); ++i) {
    if (!name.empty()) name += ' ';
    name += toks[i];
  }
  line.name = name;
  return line;
}

}  // namespace

StatusOr<Recipe> ParseTaggedRecipe(const std::string& tagged) {
  const std::string s = DenormalizeFractions(tagged);
  if (s.find(kIngrStart) == std::string::npos &&
      s.find(kInstrStart) == std::string::npos &&
      s.find(kTitleStart) == std::string::npos) {
    return Status::InvalidArgument("no recipe tags found");
  }
  Recipe r;
  r.title = StripStructuralTags(Section(s, kTitleStart, kTitleEnd));
  const std::string ingr = Section(s, kIngrStart, kIngrEnd);
  if (!ingr.empty()) {
    for (const std::string& piece : Split(ReplaceAll(ingr, kIngrNext, "\x01"),
                                          '\x01')) {
      std::string trimmed = StripStructuralTags(Trim(piece));
      if (!trimmed.empty()) {
        r.ingredients.push_back(ParseIngredientLine(trimmed));
      }
    }
  }
  const std::string instr = Section(s, kInstrStart, kInstrEnd);
  if (!instr.empty()) {
    for (const std::string& piece :
         Split(ReplaceAll(instr, kInstrNext, "\x01"), '\x01')) {
      std::string trimmed = StripStructuralTags(Trim(piece));
      if (!trimmed.empty()) r.instructions.push_back(trimmed);
    }
  }
  return r;
}

}  // namespace rt
