#ifndef RATATOUILLE_DATA_RECIPE_IO_H_
#define RATATOUILLE_DATA_RECIPE_IO_H_

#include <string>
#include <vector>

#include "data/recipe.h"
#include "util/json.h"
#include "util/status.h"

namespace rt {

/// JSON round-trip for one recipe record (the export schema mirrors
/// RecipeDB's fields: title, cuisine hierarchy, quantified ingredients,
/// instructions).
Json RecipeToJsonRecord(const Recipe& recipe);
StatusOr<Recipe> RecipeFromJsonRecord(const Json& record);

/// Writes a corpus as JSON-Lines (one recipe object per line), the
/// interchange format recipe datasets ship in (RecipeNLG, Recipe1M+).
Status SaveRecipesJsonl(const std::vector<Recipe>& recipes,
                        const std::string& path);

/// Reads a JSONL corpus back. Fails on the first malformed line with its
/// line number in the message.
StatusOr<std::vector<Recipe>> LoadRecipesJsonl(const std::string& path);

}  // namespace rt

#endif  // RATATOUILLE_DATA_RECIPE_IO_H_
