#include "data/flavor.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>

#include "util/strings.h"

namespace rt {
namespace {

struct CatalogEntry {
  NutritionProfile nutrition;   // per 100 g
  FlavorCompounds compounds;
};

/// Scaled-down FlavorDB/USDA stand-in. Compound sets are chosen so that
/// culinary-adjacent ingredients genuinely share compounds (tomato and
/// basil share "linalool"; dairy shares "diacetyl"; alliums share
/// "allicin"), giving the pairing analyses real structure.
const std::map<std::string, CatalogEntry>& CatalogMap() {
  static const auto& m = *new std::map<std::string, CatalogEntry>{
      // Vegetables / aromatics.
      {"tomato", {{18, 0.9, 0.2, 3.9}, {"linalool", "hexanal", "furaneol"}}},
      {"onion", {{40, 1.1, 0.1, 9.3}, {"allicin", "thiosulfinate", "hexanal"}}},
      {"garlic", {{149, 6.4, 0.5, 33.1}, {"allicin", "diallyl_disulfide"}}},
      {"carrot", {{41, 0.9, 0.2, 9.6}, {"terpinolene", "caryophyllene"}}},
      {"potato", {{77, 2.0, 0.1, 17.5}, {"methional", "hexanal"}}},
      {"spinach", {{23, 2.9, 0.4, 3.6}, {"hexanal", "methional"}}},
      {"broccoli", {{34, 2.8, 0.4, 6.6}, {"sulforaphane", "hexanal"}}},
      {"bell pepper", {{31, 1.0, 0.3, 6.0}, {"pyrazine", "linalool"}}},
      {"mushroom", {{22, 3.1, 0.3, 3.3}, {"octenol", "methional"}}},
      {"zucchini", {{17, 1.2, 0.3, 3.1}, {"hexanal"}}},
      {"eggplant", {{25, 1.0, 0.2, 5.9}, {"hexanal", "methional"}}},
      {"cabbage", {{25, 1.3, 0.1, 5.8}, {"sulforaphane", "thiosulfinate"}}},
      {"cauliflower", {{25, 1.9, 0.3, 5.0}, {"sulforaphane"}}},
      {"celery", {{16, 0.7, 0.2, 3.0}, {"phthalide", "terpinolene"}}},
      {"peas", {{81, 5.4, 0.4, 14.5}, {"pyrazine", "hexanal"}}},
      {"corn", {{86, 3.3, 1.4, 19.0}, {"furaneol", "diacetyl"}}},
      {"kale", {{49, 4.3, 0.9, 8.8}, {"sulforaphane", "hexanal"}}},
      {"leek", {{61, 1.5, 0.3, 14.2}, {"allicin", "thiosulfinate"}}},
      {"pumpkin", {{26, 1.0, 0.1, 6.5}, {"caryophyllene", "furaneol"}}},
      {"green beans", {{31, 1.8, 0.2, 7.0}, {"hexanal", "pyrazine"}}},
      {"cucumber", {{15, 0.7, 0.1, 3.6}, {"nonadienal", "hexanal"}}},
      {"radish", {{16, 0.7, 0.1, 3.4}, {"thiosulfinate"}}},
      {"ginger", {{80, 1.8, 0.8, 17.8}, {"gingerol", "zingiberene"}}},
      // Proteins.
      {"chicken", {{239, 27.3, 13.6, 0.0}, {"methional", "pyrazine"}}},
      {"beef", {{250, 26.0, 15.0, 0.0}, {"pyrazine", "furan", "methional"}}},
      {"pork", {{242, 27.3, 14.0, 0.0}, {"furan", "methional"}}},
      {"lamb", {{294, 25.0, 21.0, 0.0}, {"skatole", "pyrazine"}}},
      {"shrimp", {{99, 24.0, 0.3, 0.2}, {"bromophenol", "pyrazine"}}},
      {"salmon", {{208, 20.4, 13.4, 0.0}, {"decadienal", "bromophenol"}}},
      {"tofu", {{76, 8.0, 4.8, 1.9}, {"hexanal", "beany_furanone"}}},
      {"chickpeas", {{164, 8.9, 2.6, 27.4}, {"pyrazine", "beany_furanone"}}},
      {"lentils", {{116, 9.0, 0.4, 20.1}, {"pyrazine", "beany_furanone"}}},
      {"black beans", {{132, 8.9, 0.5, 23.7}, {"pyrazine", "beany_furanone"}}},
      {"egg", {{155, 13.0, 11.0, 1.1}, {"sulfide", "diacetyl"}}},
      {"turkey", {{189, 29.0, 7.0, 0.0}, {"pyrazine", "methional"}}},
      {"duck", {{337, 19.0, 28.0, 0.0}, {"furan", "decadienal"}}},
      {"paneer", {{296, 18.3, 22.0, 6.1}, {"diacetyl", "lactone"}}},
      // Grains.
      {"rice", {{130, 2.7, 0.3, 28.2}, {"popcorn_pyrroline"}}},
      {"pasta", {{131, 5.0, 1.1, 25.0}, {"hexanal"}}},
      {"noodles", {{138, 4.5, 2.1, 25.2}, {"hexanal"}}},
      {"quinoa", {{120, 4.4, 1.9, 21.3}, {"pyrazine", "hexanal"}}},
      {"couscous", {{112, 3.8, 0.2, 23.2}, {"hexanal"}}},
      {"barley", {{123, 2.3, 0.4, 28.2}, {"popcorn_pyrroline"}}},
      {"oats", {{389, 16.9, 6.9, 66.3}, {"hexanal", "vanillin"}}},
      {"flour", {{364, 10.3, 1.0, 76.3}, {"hexanal"}}},
      {"cornmeal", {{370, 8.1, 3.6, 79.0}, {"furaneol"}}},
      {"bread crumbs", {{395, 13.0, 5.3, 71.9}, {"popcorn_pyrroline"}}},
      {"tortilla", {{218, 5.7, 2.9, 45.0}, {"furaneol"}}},
      // Dairy.
      {"milk", {{61, 3.2, 3.3, 4.8}, {"diacetyl", "lactone"}}},
      {"cream", {{340, 2.1, 36.0, 2.8}, {"diacetyl", "lactone"}}},
      {"yogurt", {{59, 10.0, 0.4, 3.6}, {"diacetyl", "acetaldehyde"}}},
      {"cheddar cheese", {{403, 24.9, 33.1, 1.3}, {"diacetyl", "butyric"}}},
      {"parmesan cheese", {{431, 38.5, 29.0, 4.1}, {"butyric", "lactone"}}},
      {"mozzarella", {{280, 28.0, 17.0, 3.1}, {"diacetyl", "lactone"}}},
      {"feta cheese", {{264, 14.2, 21.3, 4.1}, {"butyric", "diacetyl"}}},
      {"sour cream", {{193, 2.4, 19.4, 4.6}, {"diacetyl", "acetaldehyde"}}},
      // Spices & herbs.
      {"cumin", {{375, 17.8, 22.3, 44.2}, {"cuminaldehyde", "pyrazine"}}},
      {"paprika", {{282, 14.1, 12.9, 54.0}, {"pyrazine", "capsaicin"}}},
      {"turmeric", {{354, 7.8, 9.9, 64.9}, {"turmerone", "zingiberene"}}},
      {"coriander", {{298, 12.4, 17.8, 55.0}, {"linalool", "decanal"}}},
      {"cinnamon", {{247, 4.0, 1.2, 80.6}, {"cinnamaldehyde", "eugenol"}}},
      {"nutmeg", {{525, 5.8, 36.3, 49.3}, {"myristicin", "eugenol"}}},
      {"black pepper", {{251, 10.4, 3.3, 63.9}, {"piperine", "caryophyllene"}}},
      {"salt", {{0, 0.0, 0.0, 0.0}, {"halite"}}},
      {"chili powder", {{282, 13.5, 14.3, 49.7}, {"capsaicin", "pyrazine"}}},
      {"curry powder", {{325, 14.3, 14.0, 55.8}, {"cuminaldehyde", "turmerone"}}},
      {"garam masala", {{379, 15.0, 15.1, 45.0}, {"cinnamaldehyde", "cuminaldehyde"}}},
      {"cardamom", {{311, 10.8, 6.7, 68.5}, {"cineole", "linalool"}}},
      {"saffron", {{310, 11.4, 5.9, 65.4}, {"safranal"}}},
      {"cayenne", {{318, 12.0, 17.3, 56.6}, {"capsaicin"}}},
      {"basil", {{23, 3.2, 0.6, 2.7}, {"linalool", "eugenol", "estragole"}}},
      {"cilantro", {{23, 2.1, 0.5, 3.7}, {"decanal", "linalool"}}},
      {"parsley", {{36, 3.0, 0.8, 6.3}, {"myristicin", "apiole"}}},
      {"thyme", {{101, 5.6, 1.7, 24.5}, {"thymol", "carvacrol"}}},
      {"rosemary", {{131, 3.3, 5.9, 20.7}, {"cineole", "camphor"}}},
      {"oregano", {{265, 9.0, 4.3, 68.9}, {"carvacrol", "thymol"}}},
      {"mint", {{70, 3.8, 0.9, 14.9}, {"menthol", "carvone"}}},
      {"dill", {{43, 3.5, 1.1, 7.0}, {"carvone", "phthalide"}}},
      {"bay leaf", {{313, 7.6, 8.4, 75.0}, {"cineole", "eugenol"}}},
      // Fats.
      {"olive oil", {{884, 0.0, 100.0, 0.0}, {"oleocanthal", "hexanal"}}},
      {"butter", {{717, 0.9, 81.1, 0.1}, {"diacetyl", "butyric", "lactone"}}},
      {"vegetable oil", {{884, 0.0, 100.0, 0.0}, {"hexanal"}}},
      {"sesame oil", {{884, 0.0, 100.0, 0.0}, {"sesamol", "pyrazine"}}},
      {"coconut oil", {{892, 0.0, 99.1, 0.0}, {"lactone", "decanal"}}},
      {"ghee", {{900, 0.0, 100.0, 0.0}, {"diacetyl", "butyric"}}},
      // Liquids.
      {"water", {{0, 0.0, 0.0, 0.0}, {}}},
      {"chicken broth", {{7, 1.0, 0.2, 0.4}, {"methional", "pyrazine"}}},
      {"vegetable broth", {{5, 0.3, 0.1, 0.9}, {"hexanal", "methional"}}},
      {"coconut milk", {{230, 2.3, 23.8, 5.5}, {"lactone", "decanal"}}},
      {"soy sauce", {{53, 8.1, 0.6, 4.9}, {"furanone", "methional"}}},
      {"white wine", {{82, 0.1, 0.0, 2.6}, {"linalool", "acetaldehyde"}}},
      {"tomato sauce", {{29, 1.3, 0.2, 6.6}, {"linalool", "furaneol"}}},
      {"lemon juice", {{22, 0.4, 0.2, 6.9}, {"limonene", "citral"}}},
      {"lime juice", {{25, 0.4, 0.1, 8.4}, {"limonene", "citral"}}},
      {"vinegar", {{18, 0.0, 0.0, 0.0}, {"acetic", "acetaldehyde"}}},
      {"fish sauce", {{35, 5.1, 0.0, 3.6}, {"bromophenol", "methional"}}},
      // Sweets.
      {"sugar", {{387, 0.0, 0.0, 100.0}, {"caramel_furanone"}}},
      {"brown sugar", {{380, 0.1, 0.0, 98.1}, {"caramel_furanone", "maltol"}}},
      {"honey", {{304, 0.3, 0.0, 82.4}, {"phenylacetic", "furaneol"}}},
      {"maple syrup", {{260, 0.0, 0.1, 67.0}, {"maltol", "vanillin"}}},
      {"chocolate chips", {{479, 4.2, 24.0, 63.1}, {"pyrazine", "vanillin"}}},
      {"vanilla extract", {{288, 0.1, 0.1, 12.7}, {"vanillin"}}},
      {"cocoa powder", {{228, 19.6, 13.7, 57.9}, {"pyrazine", "vanillin"}}},
      // Fruits.
      {"apple", {{52, 0.3, 0.2, 13.8}, {"hexanal", "estragole", "damascenone"}}},
      {"banana", {{89, 1.1, 0.3, 22.8}, {"isoamyl_acetate", "eugenol"}}},
      {"mango", {{60, 0.8, 0.4, 15.0}, {"caryophyllene", "furaneol"}}},
      {"pineapple", {{50, 0.5, 0.1, 13.1}, {"furaneol", "limonene"}}},
      {"raisins", {{299, 3.1, 0.5, 79.2}, {"damascenone", "caramel_furanone"}}},
      {"blueberries", {{57, 0.7, 0.3, 14.5}, {"linalool", "damascenone"}}},
      {"strawberries", {{32, 0.7, 0.3, 7.7}, {"furaneol", "linalool"}}},
      {"orange", {{47, 0.9, 0.1, 11.8}, {"limonene", "citral"}}},
      {"coconut", {{354, 3.3, 33.5, 15.2}, {"lactone", "decanal"}}},
      {"dates", {{277, 1.8, 0.2, 75.0}, {"caramel_furanone", "maltol"}}},
  };
  return m;
}

const CatalogEntry* Find(const std::string& ingredient) {
  const auto& m = CatalogMap();
  auto it = m.find(ToLower(Trim(ingredient)));
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

const FlavorCompounds& FlavorCompoundsFor(const std::string& ingredient) {
  static const FlavorCompounds& empty = *new FlavorCompounds();
  const CatalogEntry* entry = Find(ingredient);
  return entry != nullptr ? entry->compounds : empty;
}

const NutritionProfile& NutritionFor(const std::string& ingredient) {
  static const NutritionProfile& zero = *new NutritionProfile();
  const CatalogEntry* entry = Find(ingredient);
  return entry != nullptr ? entry->nutrition : zero;
}

bool InFlavorCatalog(const std::string& ingredient) {
  return Find(ingredient) != nullptr;
}

double PairingScore(const std::string& a, const std::string& b) {
  const FlavorCompounds& ca = FlavorCompoundsFor(a);
  const FlavorCompounds& cb = FlavorCompoundsFor(b);
  if (ca.empty() || cb.empty()) return 0.0;
  std::set<std::string> sa(ca.begin(), ca.end());
  std::set<std::string> sb(cb.begin(), cb.end());
  size_t shared = 0;
  for (const auto& c : sa) shared += sb.count(c);
  const size_t unions = sa.size() + sb.size() - shared;
  return unions == 0 ? 0.0
                     : static_cast<double>(shared) /
                           static_cast<double>(unions);
}

double MeanPairingScore(const Recipe& recipe) {
  std::vector<std::string> known;
  for (const auto& line : recipe.ingredients) {
    if (InFlavorCatalog(line.name)) known.push_back(line.name);
  }
  if (known.size() < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < known.size(); ++i) {
    for (size_t j = i + 1; j < known.size(); ++j) {
      total += PairingScore(known[i], known[j]);
      ++pairs;
    }
  }
  return total / pairs;
}

double ApproximateGrams(const IngredientLine& line) {
  // Quantity to a number ("1 1/2" -> 1.5; empty -> 1).
  double qty = 0.0;
  const auto parts = SplitWhitespace(line.quantity);
  for (const std::string& part : parts) {
    const size_t slash = part.find('/');
    if (slash != std::string::npos) {
      const double num = std::atof(part.substr(0, slash).c_str());
      const double den = std::atof(part.substr(slash + 1).c_str());
      if (den > 0) qty += num / den;
    } else {
      qty += std::atof(part.c_str());
    }
  }
  if (qty <= 0.0) qty = 1.0;

  double grams_per_unit = 50.0;  // countable items fallback
  if (line.unit == "cup") {
    grams_per_unit = 240.0;
  } else if (line.unit == "tbsp") {
    grams_per_unit = 15.0;
  } else if (line.unit == "tsp") {
    grams_per_unit = 5.0;
  } else if (line.unit == "pound") {
    grams_per_unit = 454.0;
  } else if (line.unit == "can") {
    grams_per_unit = 400.0;
  } else if (line.unit == "clove") {
    grams_per_unit = 5.0;
  } else if (line.unit == "stalk") {
    grams_per_unit = 40.0;
  } else if (line.unit == "sprig") {
    grams_per_unit = 2.0;
  } else if (line.unit == "pinch") {
    grams_per_unit = 0.5;
  }
  return qty * grams_per_unit;
}

NutritionProfile RecipeNutrition(const Recipe& recipe) {
  NutritionProfile total;
  for (const auto& line : recipe.ingredients) {
    const NutritionProfile& per100 = NutritionFor(line.name);
    const double factor = ApproximateGrams(line) / 100.0;
    total.calories_kcal += per100.calories_kcal * factor;
    total.protein_g += per100.protein_g * factor;
    total.fat_g += per100.fat_g * factor;
    total.carbs_g += per100.carbs_g * factor;
  }
  return total;
}

}  // namespace rt
