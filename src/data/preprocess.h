#ifndef RATATOUILLE_DATA_PREPROCESS_H_
#define RATATOUILLE_DATA_PREPROCESS_H_

#include <cstddef>
#include <vector>

#include "data/recipe.h"

namespace rt {

/// Length statistics of a recipe corpus (tagged-string character lengths).
struct LengthStats {
  double mean = 0.0;
  double stddev = 0.0;
  size_t min_len = 0;
  size_t max_len = 0;
  /// Fraction of recipes with length within mean +/- k*stddev.
  double CoverageWithin(double k, const std::vector<size_t>& lengths) const;
};

/// Computes mean/stddev/min/max over tagged lengths.
LengthStats ComputeLengthStats(const std::vector<size_t>& lengths);

/// Histogram of lengths with fixed-width bins (for the Fig. 3 size
/// distribution plot).
struct LengthHistogram {
  size_t bin_width = 0;
  std::vector<size_t> counts;  // counts[i] covers [i*w, (i+1)*w)
};
LengthHistogram BuildLengthHistogram(const std::vector<size_t>& lengths,
                                     size_t bin_width);

/// Options for the preprocessing pipeline (paper Sec. III & IV-B).
struct PreprocessOptions {
  bool drop_incomplete = true;
  bool drop_duplicates = true;
  /// Merge short recipes (below mean - merge_sigma * stddev) into
  /// near-mean-length records, as the paper does for the -3 sigma tail.
  bool merge_short = true;
  double merge_sigma = 3.0;
  /// Robustness floor for the merge threshold: on small or heavy-tailed
  /// corpora mean - 3*sigma degenerates below zero, so recipes shorter
  /// than merge_floor_frac * mean also count as the short tail.
  double merge_floor_frac = 0.4;
  /// Keep only recipes within mean +/- band_sigma * stddev (~2 sigma keeps
  /// 95.46 % of a normal distribution, the figure the paper quotes).
  double band_sigma = 2.0;
  /// Hard cap: recipes longer than this many tagged characters are
  /// truncated by dropping trailing instructions ("fixing the length of
  /// recipes to 2000 characters").
  size_t max_chars = 2000;
};

/// Per-rule accounting of what preprocessing did.
struct PreprocessStats {
  int input_count = 0;
  int removed_incomplete = 0;
  int removed_duplicates = 0;
  int merged_short = 0;   // records absorbed by merging
  int removed_band = 0;   // outside the sigma band
  int clamped = 0;        // truncated to max_chars
  int output_count = 0;
  LengthStats before;
  LengthStats after;
  double coverage_2sigma_before = 0.0;
};

/// Cleans a raw corpus: drops incomplete and duplicate records, merges the
/// short tail, filters to the sigma band and clamps overlong recipes.
/// Deterministic; input order is preserved for surviving records.
class Preprocessor {
 public:
  explicit Preprocessor(PreprocessOptions options = {});

  std::vector<Recipe> Run(const std::vector<Recipe>& corpus,
                          PreprocessStats* stats) const;

  const PreprocessOptions& options() const { return options_; }

 private:
  PreprocessOptions options_;
};

}  // namespace rt

#endif  // RATATOUILLE_DATA_PREPROCESS_H_
