#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rt {

double LengthStats::CoverageWithin(double k,
                                   const std::vector<size_t>& lengths) const {
  if (lengths.empty()) return 0.0;
  const double lo = mean - k * stddev;
  const double hi = mean + k * stddev;
  size_t inside = 0;
  for (size_t len : lengths) {
    const double d = static_cast<double>(len);
    if (d >= lo && d <= hi) ++inside;
  }
  return static_cast<double>(inside) / lengths.size();
}

LengthStats ComputeLengthStats(const std::vector<size_t>& lengths) {
  LengthStats s;
  if (lengths.empty()) return s;
  double sum = 0.0;
  s.min_len = lengths[0];
  s.max_len = lengths[0];
  for (size_t len : lengths) {
    sum += static_cast<double>(len);
    s.min_len = std::min(s.min_len, len);
    s.max_len = std::max(s.max_len, len);
  }
  s.mean = sum / lengths.size();
  double var = 0.0;
  for (size_t len : lengths) {
    const double d = static_cast<double>(len) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / lengths.size());
  return s;
}

LengthHistogram BuildLengthHistogram(const std::vector<size_t>& lengths,
                                     size_t bin_width) {
  LengthHistogram h;
  h.bin_width = bin_width;
  if (lengths.empty() || bin_width == 0) return h;
  size_t max_len = *std::max_element(lengths.begin(), lengths.end());
  h.counts.assign(max_len / bin_width + 1, 0);
  for (size_t len : lengths) ++h.counts[len / bin_width];
  return h;
}

Preprocessor::Preprocessor(PreprocessOptions options) : options_(options) {}

namespace {

std::vector<size_t> TaggedLengths(const std::vector<Recipe>& corpus) {
  std::vector<size_t> lengths;
  lengths.reserve(corpus.size());
  for (const Recipe& r : corpus) lengths.push_back(r.TaggedLength());
  return lengths;
}

/// Truncates trailing instructions (never below one) until the tagged form
/// fits in max_chars.
bool ClampToLength(Recipe* r, size_t max_chars) {
  bool changed = false;
  while (r->TaggedLength() > max_chars && r->instructions.size() > 1) {
    r->instructions.pop_back();
    changed = true;
  }
  return changed;
}

}  // namespace

std::vector<Recipe> Preprocessor::Run(const std::vector<Recipe>& corpus,
                                      PreprocessStats* stats) const {
  PreprocessStats local;
  PreprocessStats* st = stats != nullptr ? stats : &local;
  *st = PreprocessStats{};
  st->input_count = static_cast<int>(corpus.size());

  std::vector<size_t> lengths_before = TaggedLengths(corpus);
  st->before = ComputeLengthStats(lengths_before);
  st->coverage_2sigma_before =
      st->before.CoverageWithin(2.0, lengths_before);

  // Pass 1: drop incomplete and redundant records.
  std::vector<Recipe> work;
  work.reserve(corpus.size());
  std::unordered_set<std::string> seen;
  for (const Recipe& r : corpus) {
    if (options_.drop_incomplete && !r.IsComplete()) {
      ++st->removed_incomplete;
      continue;
    }
    if (options_.drop_duplicates) {
      auto [it, inserted] = seen.insert(r.ToTaggedString());
      (void)it;
      if (!inserted) {
        ++st->removed_duplicates;
        continue;
      }
    }
    work.push_back(r);
  }

  // Pass 2: merge the short tail into near-mean-length records.
  if (options_.merge_short && !work.empty()) {
    std::vector<size_t> lens = TaggedLengths(work);
    LengthStats cur = ComputeLengthStats(lens);
    const double threshold =
        std::max(cur.mean - options_.merge_sigma * cur.stddev,
                 options_.merge_floor_frac * cur.mean);
    std::vector<Recipe> merged;
    merged.reserve(work.size());
    Recipe* open = nullptr;  // short record currently absorbing others
    for (size_t i = 0; i < work.size(); ++i) {
      const bool is_short = static_cast<double>(lens[i]) < threshold;
      if (!is_short) {
        merged.push_back(std::move(work[i]));
        continue;
      }
      if (open == nullptr) {
        merged.push_back(std::move(work[i]));
        open = &merged.back();
        continue;
      }
      // Absorb this short recipe into the open one.
      for (auto& line : work[i].ingredients) {
        open->ingredients.push_back(std::move(line));
      }
      for (auto& step : work[i].instructions) {
        open->instructions.push_back(std::move(step));
      }
      ++st->merged_short;
      if (static_cast<double>(open->TaggedLength()) >= cur.mean - cur.stddev) {
        open = nullptr;  // long enough now
      }
    }
    work = std::move(merged);
  }

  // Pass 3: clamp overlong recipes to the hard character cap.
  for (Recipe& r : work) {
    if (ClampToLength(&r, options_.max_chars)) ++st->clamped;
  }

  // Pass 4: keep only the sigma band around the mean.
  if (options_.band_sigma > 0.0 && !work.empty()) {
    std::vector<size_t> lens = TaggedLengths(work);
    LengthStats cur = ComputeLengthStats(lens);
    const double lo = cur.mean - options_.band_sigma * cur.stddev;
    const double hi = cur.mean + options_.band_sigma * cur.stddev;
    std::vector<Recipe> kept;
    kept.reserve(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
      const double d = static_cast<double>(lens[i]);
      if (d < lo || d > hi) {
        ++st->removed_band;
        continue;
      }
      kept.push_back(std::move(work[i]));
    }
    work = std::move(kept);
  }

  st->output_count = static_cast<int>(work.size());
  std::vector<size_t> lengths_after = TaggedLengths(work);
  st->after = ComputeLengthStats(lengths_after);
  return work;
}

}  // namespace rt
