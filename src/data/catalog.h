#ifndef RATATOUILLE_DATA_CATALOG_H_
#define RATATOUILLE_DATA_CATALOG_H_

#include <string>
#include <vector>

namespace rt {

/// Ingredient roles drive which slots of a dish template an ingredient can
/// fill (so generated instructions stay semantically coherent).
enum class IngredientRole {
  kProtein,
  kVegetable,
  kGrain,
  kDairy,
  kSpice,
  kHerb,
  kFat,
  kLiquid,
  kSweet,
  kFruit,
};

const char* IngredientRoleName(IngredientRole role);

/// A catalog ingredient with its role and the units it is measured in.
struct CatalogIngredient {
  std::string name;
  IngredientRole role;
  std::vector<std::string> units;  // admissible units, first is preferred
};

/// A cuisine: country with its region and continent (RecipeDB organizes
/// recipes by 6 continents / 26 geo-cultural regions / 74 countries; the
/// synthetic catalog keeps the same 3-level hierarchy at reduced width).
struct Cuisine {
  std::string country;
  std::string region;
  std::string continent;
  std::string adjective;  // "italian", used in titles
};

/// Static culinary catalog backing the synthetic RecipeDB generator.
/// All accessors return references to immutable, deterministic data.
class Catalog {
 public:
  static const std::vector<CatalogIngredient>& Ingredients();
  static const std::vector<Cuisine>& Cuisines();
  /// Cooking processes ("bake", "simmer", ...; RecipeDB lists 268).
  static const std::vector<std::string>& Processes();
  /// Title adjectives ("rustic", "spicy", ...).
  static const std::vector<std::string>& Adjectives();
  /// Preparation styles for ingredient lines ("chopped", "diced", ...).
  static const std::vector<std::string>& Preps();
  /// Dish-type nouns used in titles ("stew", "salad", ...).
  static const std::vector<std::string>& DishNouns();

  /// Ingredients filtered by role (references into Ingredients()).
  static std::vector<const CatalogIngredient*> ByRole(IngredientRole role);

  /// Distinct continents/regions/countries counts (for the dataset report).
  static int NumContinents();
  static int NumRegions();
  static int NumCountries();
};

}  // namespace rt

#endif  // RATATOUILLE_DATA_CATALOG_H_
