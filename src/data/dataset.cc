#include "data/dataset.h"

#include <algorithm>
#include <cassert>

namespace rt {

DatasetSplits SplitDataset(const std::vector<Recipe>& corpus,
                           double val_frac, double test_frac,
                           uint64_t seed) {
  assert(val_frac >= 0.0 && test_frac >= 0.0 &&
         val_frac + test_frac < 1.0);
  std::vector<Recipe> shuffled = corpus;
  Rng rng(seed);
  rng.Shuffle(&shuffled);
  DatasetSplits splits;
  const size_t n = shuffled.size();
  const size_t n_val = static_cast<size_t>(n * val_frac);
  const size_t n_test = static_cast<size_t>(n * test_frac);
  const size_t n_train = n - n_val - n_test;
  for (size_t i = 0; i < n; ++i) {
    if (i < n_train) {
      splits.train.push_back(std::move(shuffled[i]));
    } else if (i < n_train + n_val) {
      splits.val.push_back(std::move(shuffled[i]));
    } else {
      splits.test.push_back(std::move(shuffled[i]));
    }
  }
  return splits;
}

std::vector<int> EncodeCorpus(const Tokenizer& tokenizer,
                              const std::vector<Recipe>& recipes) {
  std::vector<int> stream;
  for (const Recipe& r : recipes) {
    std::vector<int> ids = tokenizer.Encode(r.ToTaggedString() + " ");
    stream.insert(stream.end(), ids.begin(), ids.end());
  }
  return stream;
}

std::vector<std::vector<int>> BuildRecipeWindows(
    const Tokenizer& tokenizer, const std::vector<Recipe>& recipes,
    int seq_len, int pad_id) {
  std::vector<std::vector<int>> windows;
  windows.reserve(recipes.size());
  for (const Recipe& r : recipes) {
    std::vector<int> ids = tokenizer.Encode(r.ToTaggedString() + " ");
    if (static_cast<int>(ids.size()) > seq_len + 1) {
      ids.resize(seq_len + 1);
    }
    while (static_cast<int>(ids.size()) < seq_len + 1) {
      ids.push_back(pad_id);
    }
    windows.push_back(std::move(ids));
  }
  return windows;
}

BatchIterator::BatchIterator(const std::vector<int>* stream, int batch_size,
                             int seq_len, uint64_t seed)
    : stream_(stream),
      batch_size_(batch_size),
      seq_len_(seq_len),
      rng_(seed) {
  assert(batch_size_ > 0 && seq_len_ > 0);
  const int window = seq_len_ + 1;  // +1 for the shifted target
  const int n = static_cast<int>(stream_->size());
  for (int start = 0; start + window <= n; start += window) {
    offsets_.push_back(start);
  }
  rng_.Shuffle(&offsets_);
}

BatchIterator::BatchIterator(std::vector<std::vector<int>> windows,
                             int batch_size, int seq_len, uint64_t seed,
                             int pad_id)
    : doc_windows_(std::move(windows)),
      pad_id_(pad_id),
      batch_size_(batch_size),
      seq_len_(seq_len),
      rng_(seed) {
  assert(batch_size_ > 0 && seq_len_ > 0);
  for (auto& w : doc_windows_) {
    assert(w.size() >= 2);
    if (static_cast<int>(w.size()) > seq_len_ + 1) {
      w.resize(seq_len_ + 1);
    }
  }
  offsets_.resize(doc_windows_.size());
  for (size_t i = 0; i < offsets_.size(); ++i) {
    offsets_[i] = static_cast<int>(i);
  }
  rng_.Shuffle(&offsets_);
}

void BatchIterator::FillRow(int window_index, int row, Batch* out) const {
  const size_t base = static_cast<size_t>(row) * seq_len_;
  if (stream_ != nullptr) {
    const int start = window_index;
    for (int t = 0; t < seq_len_; ++t) {
      out->inputs[base + t] = (*stream_)[start + t];
      out->targets[base + t] = (*stream_)[start + t + 1];
    }
    return;
  }
  const std::vector<int>& w = doc_windows_[window_index];
  const int len = static_cast<int>(w.size());
  for (int t = 0; t < seq_len_; ++t) {
    out->inputs[base + t] = t < len ? w[t] : pad_id_;
    out->targets[base + t] = t + 1 < len ? w[t + 1] : pad_id_;
  }
}

bool BatchIterator::Next(Batch* out) {
  if (cursor_ >= offsets_.size()) return false;
  const size_t remaining = offsets_.size() - cursor_;
  const int b = static_cast<int>(
      std::min<size_t>(remaining, static_cast<size_t>(batch_size_)));
  out->batch_size = b;
  out->seq_len = seq_len_;
  out->ignore_index = stream_ != nullptr ? -1 : pad_id_;
  out->inputs.assign(static_cast<size_t>(b) * seq_len_, 0);
  out->targets.assign(static_cast<size_t>(b) * seq_len_, 0);
  for (int i = 0; i < b; ++i) {
    FillRow(offsets_[cursor_ + i], i, out);
  }
  cursor_ += b;
  return true;
}

void BatchIterator::NextEpoch() {
  cursor_ = 0;
  rng_.Shuffle(&offsets_);
}

int BatchIterator::BatchesPerEpoch() const {
  return static_cast<int>(
      (offsets_.size() + batch_size_ - 1) / batch_size_);
}

}  // namespace rt
