#ifndef RATATOUILLE_DATA_FLAVOR_H_
#define RATATOUILLE_DATA_FLAVOR_H_

#include <string>
#include <vector>

#include "data/recipe.h"

namespace rt {

// RecipeDB interlinks every ingredient with its flavor molecules
// (FlavorDB) and nutrition profile (USDA) — paper Sec. III. This module
// is the synthetic stand-in: a deterministic catalog of flavor-compound
// sets and per-100g nutrition for the generator's ingredient vocabulary,
// plus the analyses those linkages enable (food-pairing scores and
// recipe-level nutrition totals).

/// Per-100 g macro-nutrient profile.
struct NutritionProfile {
  double calories_kcal = 0.0;
  double protein_g = 0.0;
  double fat_g = 0.0;
  double carbs_g = 0.0;
};

/// Flavor-compound ids shared across ingredients (a scaled-down
/// FlavorDB: compound names stand in for molecule ids).
using FlavorCompounds = std::vector<std::string>;

/// Looks up the flavor compounds of an ingredient; empty if unknown.
const FlavorCompounds& FlavorCompoundsFor(const std::string& ingredient);

/// Looks up the nutrition profile; zeros if unknown.
const NutritionProfile& NutritionFor(const std::string& ingredient);

/// True if the ingredient is in the flavor/nutrition catalog.
bool InFlavorCatalog(const std::string& ingredient);

/// Food-pairing score of two ingredients: |shared compounds| /
/// |union of compounds| (Jaccard), the quantity behind the food-pairing
/// hypothesis analyses RecipeDB supports. 0 when either is unknown.
double PairingScore(const std::string& a, const std::string& b);

/// Mean pairwise pairing score over a recipe's ingredients (0 when fewer
/// than two known ingredients).
double MeanPairingScore(const Recipe& recipe);

/// Approximate grams represented by one ingredient line, from its
/// quantity and unit ("2 cups" -> ~480 g, "1 tsp" -> ~5 g, ...). Unknown
/// units fall back to 50 g per count.
double ApproximateGrams(const IngredientLine& line);

/// Recipe-level nutrition: sums the per-line profiles scaled by
/// approximate grams.
NutritionProfile RecipeNutrition(const Recipe& recipe);

}  // namespace rt

#endif  // RATATOUILLE_DATA_FLAVOR_H_
