#include "data/generator.h"

#include <cassert>
#include <string>

#include "data/catalog.h"

namespace rt {
namespace {

using R = IngredientRole;

enum class DishKind {
  kStew,
  kSoup,
  kCurry,
  kSalad,
  kStirFry,
  kBakedDessert,
  kCasserole,
  kPilaf,
};

constexpr DishKind kAllKinds[] = {
    DishKind::kStew,        DishKind::kSoup,      DishKind::kCurry,
    DishKind::kSalad,       DishKind::kStirFry,   DishKind::kBakedDessert,
    DishKind::kCasserole,   DishKind::kPilaf,
};

const char* DishNoun(DishKind kind) {
  switch (kind) {
    case DishKind::kStew:
      return "stew";
    case DishKind::kSoup:
      return "soup";
    case DishKind::kCurry:
      return "curry";
    case DishKind::kSalad:
      return "salad";
    case DishKind::kStirFry:
      return "stir fry";
    case DishKind::kBakedDessert:
      return "cake";
    case DishKind::kCasserole:
      return "casserole";
    case DishKind::kPilaf:
      return "pilaf";
  }
  return "dish";
}

/// Ingredients selected for one recipe, bucketed by role.
struct Selection {
  std::vector<const CatalogIngredient*> proteins;
  std::vector<const CatalogIngredient*> vegetables;
  std::vector<const CatalogIngredient*> grains;
  std::vector<const CatalogIngredient*> dairy;
  std::vector<const CatalogIngredient*> spices;
  std::vector<const CatalogIngredient*> herbs;
  std::vector<const CatalogIngredient*> fats;
  std::vector<const CatalogIngredient*> liquids;
  std::vector<const CatalogIngredient*> sweets;
  std::vector<const CatalogIngredient*> fruits;

  std::vector<const CatalogIngredient*> All() const {
    std::vector<const CatalogIngredient*> all;
    for (const auto* bucket :
         {&proteins, &vegetables, &grains, &dairy, &spices, &herbs, &fats,
          &liquids, &sweets, &fruits}) {
      all.insert(all.end(), bucket->begin(), bucket->end());
    }
    return all;
  }
};

/// Picks `n` distinct ingredients of `role` (fewer if the role is small).
std::vector<const CatalogIngredient*> PickRole(R role, int n, Rng* rng) {
  std::vector<const CatalogIngredient*> pool = Catalog::ByRole(role);
  rng->Shuffle(&pool);
  if (static_cast<int>(pool.size()) > n) pool.resize(n);
  return pool;
}

std::string QuantityFor(const std::string& unit, Rng* rng) {
  if (unit.empty()) {
    // Countable items: 1..4.
    return std::to_string(rng->UniformInt(1, 4));
  }
  if (unit == "cup") {
    static const char* kCup[] = {"1/4", "1/3", "1/2", "2/3", "3/4",
                                 "1",   "1 1/2", "2",  "3"};
    return kCup[rng->NextBelow(9)];
  }
  if (unit == "tsp" || unit == "tbsp") {
    static const char* kSpoon[] = {"1/4", "1/2", "1", "2", "3"};
    return kSpoon[rng->NextBelow(5)];
  }
  if (unit == "pound") {
    static const char* kPound[] = {"1/2", "1", "1 1/2", "2"};
    return kPound[rng->NextBelow(4)];
  }
  if (unit == "can" || unit == "clove" || unit == "stalk" ||
      unit == "sprig") {
    return std::to_string(rng->UniformInt(1, 3));
  }
  if (unit == "pinch") return "1";
  return "1";
}

IngredientLine MakeLine(const CatalogIngredient& ing, Rng* rng,
                        bool with_prep) {
  IngredientLine line;
  line.unit = rng->Choice(ing.units);
  line.quantity = QuantityFor(line.unit, rng);
  line.name = ing.name;
  if (with_prep && (ing.role == R::kVegetable || ing.role == R::kProtein ||
                    ing.role == R::kFruit) &&
      rng->NextBool(0.6)) {
    line.prep = rng->Choice(Catalog::Preps());
  }
  return line;
}

std::string JoinNames(const std::vector<const CatalogIngredient*>& v,
                      const std::string& final_sep = " and ") {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += (i + 1 == v.size()) ? final_sep : std::string(" , ");
    out += v[i]->name;
  }
  return out;
}

int Minutes(Rng* rng, int lo, int hi, int step) {
  int range = (hi - lo) / step;
  return lo + step * rng->UniformInt(0, range);
}

// ---- Per-template instruction builders ----------------------------------
// Each builder consumes the selection deterministically; the only
// randomness is durations/optional steps, so the ingredient list strongly
// predicts the instruction text (that is the structure the models learn).

std::vector<std::string> StewSoupInstructions(const Selection& s, Rng* rng,
                                              bool is_soup) {
  std::vector<std::string> steps;
  steps.push_back("heat the " + s.fats[0]->name +
                  " in a large pot over medium heat");
  steps.push_back("add the " + JoinNames(s.vegetables) +
                  " and saute until softened");
  if (!s.spices.empty()) {
    steps.push_back("stir in the " + JoinNames(s.spices) +
                    " and cook until fragrant");
  }
  if (!s.proteins.empty()) {
    steps.push_back("add the " + s.proteins[0]->name +
                    " and brown on all sides");
  }
  steps.push_back("pour in the " + s.liquids[0]->name +
                  " and bring to a boil");
  steps.push_back("reduce the heat and simmer for " +
                  std::to_string(Minutes(rng, 20, 40, 5)) + " minutes");
  if (is_soup) {
    steps.push_back("blend until smooth if a creamy texture is desired");
  }
  if (!s.herbs.empty()) {
    steps.push_back("season with salt and garnish with " +
                    s.herbs[0]->name + " before serving");
  } else {
    steps.push_back("season with salt and serve hot");
  }
  return steps;
}

std::vector<std::string> CurryInstructions(const Selection& s, Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("heat the " + s.fats[0]->name +
                  " in a heavy pan over medium heat");
  steps.push_back("add the " + JoinNames(s.vegetables) +
                  " and cook until golden");
  steps.push_back("stir in the " + JoinNames(s.spices) +
                  " and toast for one minute");
  if (!s.proteins.empty()) {
    steps.push_back("add the " + s.proteins[0]->name +
                    " and coat well with the spices");
  }
  steps.push_back("pour in the " + s.liquids[0]->name +
                  " and simmer for " +
                  std::to_string(Minutes(rng, 15, 35, 5)) + " minutes");
  if (!s.herbs.empty()) {
    steps.push_back("garnish with " + s.herbs[0]->name +
                    " and serve with rice");
  } else {
    steps.push_back("serve hot with rice");
  }
  return steps;
}

std::vector<std::string> SaladInstructions(const Selection& s, Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("chop the " + JoinNames(s.vegetables) +
                  " into bite sized pieces");
  if (!s.proteins.empty()) {
    steps.push_back("cook the " + s.proteins[0]->name +
                    " and let it cool");
  }
  steps.push_back("whisk the " + s.fats[0]->name + " with the " +
                  s.liquids[0]->name + " to make a dressing");
  steps.push_back("toss everything together in a large bowl");
  if (!s.dairy.empty()) {
    steps.push_back("top with the " + s.dairy[0]->name);
  }
  if (!s.herbs.empty() && rng->NextBool(0.7)) {
    steps.push_back("scatter the " + s.herbs[0]->name + " on top");
  }
  steps.push_back("chill for " + std::to_string(Minutes(rng, 10, 30, 10)) +
                  " minutes before serving");
  return steps;
}

std::vector<std::string> StirFryInstructions(const Selection& s, Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("heat the " + s.fats[0]->name +
                  " in a wok over high heat");
  if (!s.proteins.empty()) {
    steps.push_back("sear the " + s.proteins[0]->name +
                    " until nearly cooked through and set aside");
  }
  steps.push_back("stir fry the " + JoinNames(s.vegetables) +
                  " for " + std::to_string(Minutes(rng, 3, 6, 1)) +
                  " minutes");
  steps.push_back("add the " + s.liquids[0]->name +
                  " and toss to combine");
  if (!s.proteins.empty()) {
    steps.push_back("return the " + s.proteins[0]->name +
                    " to the wok and stir well");
  }
  if (!s.grains.empty()) {
    steps.push_back("serve over steamed " + s.grains[0]->name);
  } else {
    steps.push_back("serve immediately");
  }
  return steps;
}

std::vector<std::string> BakedDessertInstructions(const Selection& s,
                                                  Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("preheat the oven to " +
                  std::to_string(325 + 25 * rng->UniformInt(0, 2)) +
                  " degrees f");
  steps.push_back("cream the " + s.fats[0]->name + " with the " +
                  s.sweets[0]->name + " until light");
  steps.push_back("beat in the " + s.dairy[0]->name +
                  " until fully combined");
  steps.push_back("fold in the " + s.grains[0]->name +
                  " to form a smooth batter");
  if (!s.fruits.empty()) {
    steps.push_back("gently stir in the " + JoinNames(s.fruits));
  }
  steps.push_back("pour the batter into a greased pan");
  steps.push_back("bake for " + std::to_string(Minutes(rng, 25, 50, 5)) +
                  " minutes until golden");
  steps.push_back("cool before slicing and serving");
  return steps;
}

std::vector<std::string> CasseroleInstructions(const Selection& s,
                                               Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("preheat the oven to " +
                  std::to_string(350 + 25 * rng->UniformInt(0, 2)) +
                  " degrees f");
  steps.push_back("layer the " + JoinNames(s.vegetables) +
                  " in a baking dish");
  if (!s.proteins.empty()) {
    steps.push_back("scatter the " + s.proteins[0]->name +
                    " over the vegetables");
  }
  steps.push_back("pour the " + s.liquids[0]->name + " over the top");
  if (!s.dairy.empty()) {
    steps.push_back("cover with the " + s.dairy[0]->name);
  }
  steps.push_back("bake for " + std::to_string(Minutes(rng, 30, 50, 5)) +
                  " minutes until bubbling");
  steps.push_back("rest for ten minutes before serving");
  return steps;
}

std::vector<std::string> PilafInstructions(const Selection& s, Rng* rng) {
  std::vector<std::string> steps;
  steps.push_back("rinse the " + s.grains[0]->name +
                  " under cold water and drain");
  steps.push_back("heat the " + s.fats[0]->name + " in a saucepan");
  steps.push_back("saute the " + JoinNames(s.vegetables) +
                  " until translucent");
  if (!s.spices.empty()) {
    steps.push_back("add the " + JoinNames(s.spices) +
                    " and stir for one minute");
  }
  steps.push_back("add the " + s.grains[0]->name + " and the " +
                  s.liquids[0]->name + " and bring to a boil");
  steps.push_back("cover and cook on low for " +
                  std::to_string(Minutes(rng, 15, 25, 5)) + " minutes");
  steps.push_back("fluff with a fork and serve");
  return steps;
}

Selection SelectIngredients(DishKind kind, Rng* rng) {
  Selection s;
  switch (kind) {
    case DishKind::kStew:
    case DishKind::kSoup:
      s.fats = PickRole(R::kFat, 1, rng);
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(2, 4), rng);
      s.spices = PickRole(R::kSpice, rng->UniformInt(1, 2), rng);
      s.proteins = PickRole(R::kProtein, rng->NextBool(0.8) ? 1 : 0, rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      s.herbs = PickRole(R::kHerb, rng->NextBool(0.7) ? 1 : 0, rng);
      break;
    case DishKind::kCurry:
      s.fats = PickRole(R::kFat, 1, rng);
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(2, 3), rng);
      s.spices = PickRole(R::kSpice, rng->UniformInt(2, 3), rng);
      s.proteins = PickRole(R::kProtein, 1, rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      s.herbs = PickRole(R::kHerb, rng->NextBool(0.6) ? 1 : 0, rng);
      break;
    case DishKind::kSalad:
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(3, 4), rng);
      s.proteins = PickRole(R::kProtein, rng->NextBool(0.5) ? 1 : 0, rng);
      s.fats = PickRole(R::kFat, 1, rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      s.dairy = PickRole(R::kDairy, rng->NextBool(0.5) ? 1 : 0, rng);
      s.herbs = PickRole(R::kHerb, 1, rng);
      break;
    case DishKind::kStirFry:
      s.fats = PickRole(R::kFat, 1, rng);
      s.proteins = PickRole(R::kProtein, 1, rng);
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(2, 4), rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      s.grains = PickRole(R::kGrain, rng->NextBool(0.7) ? 1 : 0, rng);
      break;
    case DishKind::kBakedDessert:
      s.fats = PickRole(R::kFat, 1, rng);
      s.sweets = PickRole(R::kSweet, rng->UniformInt(1, 2), rng);
      s.dairy = PickRole(R::kDairy, 1, rng);
      s.grains = PickRole(R::kGrain, 1, rng);
      s.fruits = PickRole(R::kFruit, rng->UniformInt(0, 2), rng);
      break;
    case DishKind::kCasserole:
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(2, 3), rng);
      s.proteins = PickRole(R::kProtein, rng->NextBool(0.7) ? 1 : 0, rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      s.dairy = PickRole(R::kDairy, 1, rng);
      break;
    case DishKind::kPilaf:
      s.grains = PickRole(R::kGrain, 1, rng);
      s.fats = PickRole(R::kFat, 1, rng);
      s.vegetables = PickRole(R::kVegetable, rng->UniformInt(1, 3), rng);
      s.spices = PickRole(R::kSpice, rng->UniformInt(1, 2), rng);
      s.liquids = PickRole(R::kLiquid, 1, rng);
      break;
  }
  return s;
}

std::vector<std::string> BuildInstructions(DishKind kind,
                                           const Selection& s, Rng* rng) {
  switch (kind) {
    case DishKind::kStew:
      return StewSoupInstructions(s, rng, /*is_soup=*/false);
    case DishKind::kSoup:
      return StewSoupInstructions(s, rng, /*is_soup=*/true);
    case DishKind::kCurry:
      return CurryInstructions(s, rng);
    case DishKind::kSalad:
      return SaladInstructions(s, rng);
    case DishKind::kStirFry:
      return StirFryInstructions(s, rng);
    case DishKind::kBakedDessert:
      return BakedDessertInstructions(s, rng);
    case DishKind::kCasserole:
      return CasseroleInstructions(s, rng);
    case DishKind::kPilaf:
      return PilafInstructions(s, rng);
  }
  return {};
}

std::string MainIngredientName(DishKind kind, const Selection& s) {
  if (!s.proteins.empty()) return s.proteins[0]->name;
  if (kind == DishKind::kBakedDessert && !s.fruits.empty()) {
    return s.fruits[0]->name;
  }
  if (kind == DishKind::kBakedDessert && !s.sweets.empty()) {
    return s.sweets[0]->name;
  }
  if (!s.grains.empty()) return s.grains[0]->name;
  if (!s.vegetables.empty()) return s.vegetables[0]->name;
  return "house";
}

}  // namespace

RecipeDbGenerator::RecipeDbGenerator(GeneratorOptions options)
    : options_(options) {}

Recipe RecipeDbGenerator::GenerateOne(long long id, Rng* rng) const {
  Recipe r;
  r.id = id;
  const DishKind kind =
      kAllKinds[rng->NextBelow(std::size(kAllKinds))];
  const Cuisine& cuisine = rng->Choice(Catalog::Cuisines());
  r.country = cuisine.country;
  r.region = cuisine.region;
  r.continent = cuisine.continent;

  Selection sel = SelectIngredients(kind, rng);
  for (const CatalogIngredient* ing : sel.All()) {
    r.ingredients.push_back(MakeLine(*ing, rng, /*with_prep=*/true));
  }
  r.instructions = BuildInstructions(kind, sel, rng);
  r.title = rng->Choice(Catalog::Adjectives()) + " " + cuisine.adjective +
            " " + MainIngredientName(kind, sel) + " " + DishNoun(kind);
  return r;
}

std::vector<Recipe> RecipeDbGenerator::Generate() const {
  Rng rng(options_.seed);
  std::vector<Recipe> out;
  out.reserve(options_.num_recipes);
  for (int i = 0; i < options_.num_recipes; ++i) {
    const double roll = rng.NextDouble();
    const double p_dup = options_.duplicate_fraction;
    const double p_inc = p_dup + options_.incomplete_fraction;
    const double p_long = p_inc + options_.overlong_fraction;
    const double p_short = p_long + options_.short_fraction;

    if (roll < p_dup && !out.empty()) {
      // Redundant record: exact copy of an earlier recipe, new id.
      Recipe dup = out[rng.NextBelow(out.size())];
      dup.id = i;
      out.push_back(std::move(dup));
      continue;
    }
    Recipe r = GenerateOne(i, &rng);
    if (roll < p_inc) {
      // Incomplete record: strip instructions or title.
      if (rng.NextBool()) {
        r.instructions.clear();
      } else {
        r.title.clear();
      }
    } else if (roll < p_long) {
      // Overlong record: restate the steps until past the 2000-char clamp.
      std::vector<std::string> extra = r.instructions;
      while (r.TaggedLength() < 2300) {
        for (const std::string& step : extra) {
          r.instructions.push_back("repeat to taste : " + step);
        }
      }
    } else if (roll < p_short) {
      // Short-tail record (-3 sigma): a bare couple of lines.
      if (r.ingredients.size() > 2) r.ingredients.resize(2);
      if (!r.instructions.empty()) r.instructions.resize(1);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace rt
