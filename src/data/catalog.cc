#include "data/catalog.h"

#include <set>

namespace rt {

const char* IngredientRoleName(IngredientRole role) {
  switch (role) {
    case IngredientRole::kProtein:
      return "protein";
    case IngredientRole::kVegetable:
      return "vegetable";
    case IngredientRole::kGrain:
      return "grain";
    case IngredientRole::kDairy:
      return "dairy";
    case IngredientRole::kSpice:
      return "spice";
    case IngredientRole::kHerb:
      return "herb";
    case IngredientRole::kFat:
      return "fat";
    case IngredientRole::kLiquid:
      return "liquid";
    case IngredientRole::kSweet:
      return "sweet";
    case IngredientRole::kFruit:
      return "fruit";
  }
  return "?";
}

const std::vector<CatalogIngredient>& Catalog::Ingredients() {
  using R = IngredientRole;
  static const std::vector<CatalogIngredient>& v =
      *new std::vector<CatalogIngredient>{
          // Proteins.
          {"chicken", R::kProtein, {"pound", "cup"}},
          {"beef", R::kProtein, {"pound"}},
          {"pork", R::kProtein, {"pound"}},
          {"lamb", R::kProtein, {"pound"}},
          {"shrimp", R::kProtein, {"pound", "cup"}},
          {"salmon", R::kProtein, {"pound"}},
          {"tofu", R::kProtein, {"cup", "pound"}},
          {"chickpeas", R::kProtein, {"cup", "can"}},
          {"lentils", R::kProtein, {"cup"}},
          {"black beans", R::kProtein, {"cup", "can"}},
          {"egg", R::kProtein, {"", "cup"}},
          {"turkey", R::kProtein, {"pound"}},
          {"duck", R::kProtein, {"pound"}},
          {"paneer", R::kProtein, {"cup"}},
          // Vegetables.
          {"tomato", R::kVegetable, {"", "cup"}},
          {"onion", R::kVegetable, {"", "cup"}},
          {"garlic", R::kVegetable, {"clove", "tsp"}},
          {"carrot", R::kVegetable, {"", "cup"}},
          {"potato", R::kVegetable, {"", "cup"}},
          {"spinach", R::kVegetable, {"cup"}},
          {"broccoli", R::kVegetable, {"cup"}},
          {"bell pepper", R::kVegetable, {"", "cup"}},
          {"mushroom", R::kVegetable, {"cup"}},
          {"zucchini", R::kVegetable, {"", "cup"}},
          {"eggplant", R::kVegetable, {"", "cup"}},
          {"cabbage", R::kVegetable, {"cup"}},
          {"cauliflower", R::kVegetable, {"cup"}},
          {"celery", R::kVegetable, {"stalk", "cup"}},
          {"peas", R::kVegetable, {"cup"}},
          {"corn", R::kVegetable, {"cup", "can"}},
          {"kale", R::kVegetable, {"cup"}},
          {"leek", R::kVegetable, {"", "cup"}},
          {"pumpkin", R::kVegetable, {"cup"}},
          {"green beans", R::kVegetable, {"cup"}},
          {"cucumber", R::kVegetable, {"", "cup"}},
          {"radish", R::kVegetable, {"", "cup"}},
          {"ginger", R::kVegetable, {"tbsp", "tsp"}},
          // Grains & starches.
          {"rice", R::kGrain, {"cup"}},
          {"pasta", R::kGrain, {"cup", "pound"}},
          {"noodles", R::kGrain, {"cup", "pound"}},
          {"quinoa", R::kGrain, {"cup"}},
          {"couscous", R::kGrain, {"cup"}},
          {"barley", R::kGrain, {"cup"}},
          {"oats", R::kGrain, {"cup"}},
          {"flour", R::kGrain, {"cup"}},
          {"cornmeal", R::kGrain, {"cup"}},
          {"bread crumbs", R::kGrain, {"cup"}},
          {"tortilla", R::kGrain, {""}},
          // Dairy.
          {"milk", R::kDairy, {"cup"}},
          {"cream", R::kDairy, {"cup"}},
          {"yogurt", R::kDairy, {"cup"}},
          {"cheddar cheese", R::kDairy, {"cup"}},
          {"parmesan cheese", R::kDairy, {"cup", "tbsp"}},
          {"mozzarella", R::kDairy, {"cup"}},
          {"feta cheese", R::kDairy, {"cup"}},
          {"sour cream", R::kDairy, {"cup", "tbsp"}},
          // Spices.
          {"cumin", R::kSpice, {"tsp", "tbsp"}},
          {"paprika", R::kSpice, {"tsp"}},
          {"turmeric", R::kSpice, {"tsp"}},
          {"coriander", R::kSpice, {"tsp"}},
          {"cinnamon", R::kSpice, {"tsp"}},
          {"nutmeg", R::kSpice, {"tsp"}},
          {"black pepper", R::kSpice, {"tsp"}},
          {"salt", R::kSpice, {"tsp", "tbsp"}},
          {"chili powder", R::kSpice, {"tsp", "tbsp"}},
          {"curry powder", R::kSpice, {"tbsp", "tsp"}},
          {"garam masala", R::kSpice, {"tsp"}},
          {"cardamom", R::kSpice, {"tsp"}},
          {"saffron", R::kSpice, {"pinch"}},
          {"cayenne", R::kSpice, {"tsp"}},
          // Herbs.
          {"basil", R::kHerb, {"cup", "tbsp"}},
          {"cilantro", R::kHerb, {"cup", "tbsp"}},
          {"parsley", R::kHerb, {"cup", "tbsp"}},
          {"thyme", R::kHerb, {"tsp", "sprig"}},
          {"rosemary", R::kHerb, {"tsp", "sprig"}},
          {"oregano", R::kHerb, {"tsp"}},
          {"mint", R::kHerb, {"cup", "tbsp"}},
          {"dill", R::kHerb, {"tbsp"}},
          {"bay leaf", R::kHerb, {""}},
          // Fats.
          {"olive oil", R::kFat, {"tbsp", "cup"}},
          {"butter", R::kFat, {"tbsp", "cup"}},
          {"vegetable oil", R::kFat, {"tbsp", "cup"}},
          {"sesame oil", R::kFat, {"tbsp", "tsp"}},
          {"coconut oil", R::kFat, {"tbsp"}},
          {"ghee", R::kFat, {"tbsp"}},
          // Liquids.
          {"water", R::kLiquid, {"cup"}},
          {"chicken broth", R::kLiquid, {"cup"}},
          {"vegetable broth", R::kLiquid, {"cup"}},
          {"coconut milk", R::kLiquid, {"cup", "can"}},
          {"soy sauce", R::kLiquid, {"tbsp", "tsp"}},
          {"white wine", R::kLiquid, {"cup"}},
          {"tomato sauce", R::kLiquid, {"cup", "can"}},
          {"lemon juice", R::kLiquid, {"tbsp", "tsp"}},
          {"lime juice", R::kLiquid, {"tbsp", "tsp"}},
          {"vinegar", R::kLiquid, {"tbsp", "tsp"}},
          {"fish sauce", R::kLiquid, {"tbsp", "tsp"}},
          // Sweets.
          {"sugar", R::kSweet, {"cup", "tbsp"}},
          {"brown sugar", R::kSweet, {"cup", "tbsp"}},
          {"honey", R::kSweet, {"tbsp", "cup"}},
          {"maple syrup", R::kSweet, {"tbsp", "cup"}},
          {"chocolate chips", R::kSweet, {"cup"}},
          {"vanilla extract", R::kSweet, {"tsp"}},
          {"cocoa powder", R::kSweet, {"cup", "tbsp"}},
          // Fruits.
          {"apple", R::kFruit, {"", "cup"}},
          {"banana", R::kFruit, {"", "cup"}},
          {"mango", R::kFruit, {"", "cup"}},
          {"pineapple", R::kFruit, {"cup"}},
          {"raisins", R::kFruit, {"cup", "tbsp"}},
          {"blueberries", R::kFruit, {"cup"}},
          {"strawberries", R::kFruit, {"cup"}},
          {"orange", R::kFruit, {"", "cup"}},
          {"coconut", R::kFruit, {"cup"}},
          {"dates", R::kFruit, {"cup"}},
      };
  return v;
}

const std::vector<Cuisine>& Catalog::Cuisines() {
  static const std::vector<Cuisine>& v = *new std::vector<Cuisine>{
      {"italy", "southern europe", "europe", "italian"},
      {"france", "western europe", "europe", "french"},
      {"spain", "southern europe", "europe", "spanish"},
      {"greece", "southern europe", "europe", "greek"},
      {"germany", "western europe", "europe", "german"},
      {"hungary", "eastern europe", "europe", "hungarian"},
      {"india", "indian subcontinent", "asia", "indian"},
      {"china", "east asia", "asia", "chinese"},
      {"japan", "east asia", "asia", "japanese"},
      {"thailand", "southeast asia", "asia", "thai"},
      {"vietnam", "southeast asia", "asia", "vietnamese"},
      {"korea", "east asia", "asia", "korean"},
      {"lebanon", "middle east", "asia", "lebanese"},
      {"turkey", "middle east", "asia", "turkish"},
      {"mexico", "central america", "north america", "mexican"},
      {"usa", "northern america", "north america", "american"},
      {"canada", "northern america", "north america", "canadian"},
      {"jamaica", "caribbean", "north america", "jamaican"},
      {"brazil", "south america", "south america", "brazilian"},
      {"peru", "south america", "south america", "peruvian"},
      {"argentina", "south america", "south america", "argentinian"},
      {"morocco", "northern africa", "africa", "moroccan"},
      {"ethiopia", "eastern africa", "africa", "ethiopian"},
      {"nigeria", "western africa", "africa", "nigerian"},
      {"egypt", "northern africa", "africa", "egyptian"},
      {"australia", "australasia", "oceania", "australian"},
      {"new zealand", "australasia", "oceania", "kiwi"},
  };
  return v;
}

const std::vector<std::string>& Catalog::Processes() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "bake",   "boil",    "simmer",  "saute",   "roast",  "grill",
      "steam",  "fry",     "stir",    "whisk",   "knead",  "chop",
      "dice",   "mince",   "blend",   "marinate", "braise", "toast",
      "sear",   "poach",   "reduce",  "caramelize", "fold", "drain",
      "garnish", "season", "preheat", "chill",   "melt",   "combine",
  };
  return v;
}

const std::vector<std::string>& Catalog::Adjectives() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "rustic", "spicy",  "creamy",  "hearty",  "fresh",
      "smoky",  "tangy",  "savory",  "classic", "golden",
      "crispy", "fragrant", "zesty", "sweet",   "homestyle",
  };
  return v;
}

const std::vector<std::string>& Catalog::Preps() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "chopped", "diced",  "minced", "sliced",   "grated",
      "crushed", "cubed",  "shredded", "julienned", "halved",
  };
  return v;
}

const std::vector<std::string>& Catalog::DishNouns() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "stew",  "soup",   "curry",  "salad",  "stir fry",
      "bake",  "casserole", "bowl", "skillet", "pilaf",
      "pudding", "cake",
  };
  return v;
}

std::vector<const CatalogIngredient*> Catalog::ByRole(IngredientRole role) {
  std::vector<const CatalogIngredient*> out;
  for (const auto& ing : Ingredients()) {
    if (ing.role == role) out.push_back(&ing);
  }
  return out;
}

namespace {

int CountDistinct(const std::vector<Cuisine>& cuisines,
                  std::string Cuisine::*field) {
  std::set<std::string> s;
  for (const auto& c : cuisines) s.insert(c.*field);
  return static_cast<int>(s.size());
}

}  // namespace

int Catalog::NumContinents() {
  return CountDistinct(Cuisines(), &Cuisine::continent);
}

int Catalog::NumRegions() {
  return CountDistinct(Cuisines(), &Cuisine::region);
}

int Catalog::NumCountries() {
  return CountDistinct(Cuisines(), &Cuisine::country);
}

}  // namespace rt
