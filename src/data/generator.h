#ifndef RATATOUILLE_DATA_GENERATOR_H_
#define RATATOUILLE_DATA_GENERATOR_H_

#include <vector>

#include "data/recipe.h"
#include "util/rng.h"

namespace rt {

/// Options for the synthetic RecipeDB corpus.
///
/// The noise fractions model the defects the paper's preprocessing stage
/// removes (Sec. III: "removing incomplete and redundant recipes, fixing
/// the length of recipes to 2000 characters"): incomplete records,
/// duplicated records, a long tail of overlong recipes and a short tail
/// (the -3 sigma recipes the paper merges).
struct GeneratorOptions {
  int num_recipes = 1000;
  uint64_t seed = 1;
  double incomplete_fraction = 0.03;
  double duplicate_fraction = 0.05;
  double overlong_fraction = 0.02;
  double short_fraction = 0.04;
};

/// Deterministic grammar-based recipe generator standing in for RecipeDB.
///
/// Recipes are drawn from dish templates (stew, curry, salad, stir fry,
/// baked dessert, ...) whose instruction sequences are functions of the
/// sampled ingredients, so the corpus has a learnable ingredient ->
/// instructions structure, plus controlled stochasticity (durations,
/// adjectives, optional steps) that keeps generation from being exactly
/// memorizable. Same options => bit-identical corpus.
class RecipeDbGenerator {
 public:
  explicit RecipeDbGenerator(GeneratorOptions options);

  /// Generates the full corpus, noise records included.
  std::vector<Recipe> Generate() const;

  /// Generates one clean recipe (no injected noise).
  Recipe GenerateOne(long long id, Rng* rng) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
};

}  // namespace rt

#endif  // RATATOUILLE_DATA_GENERATOR_H_
