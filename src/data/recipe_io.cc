#include "data/recipe_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/fault_injection.h"

namespace rt {

Json RecipeToJsonRecord(const Recipe& recipe) {
  Json out{Json::Object{}};
  out.Set("id", static_cast<double>(recipe.id));
  out.Set("title", recipe.title);
  out.Set("continent", recipe.continent);
  out.Set("region", recipe.region);
  out.Set("country", recipe.country);
  Json ingredients{Json::Array{}};
  for (const auto& line : recipe.ingredients) {
    Json item{Json::Object{}};
    item.Set("quantity", line.quantity);
    item.Set("unit", line.unit);
    item.Set("name", line.name);
    item.Set("prep", line.prep);
    ingredients.Append(std::move(item));
  }
  out.Set("ingredients", std::move(ingredients));
  Json instructions{Json::Array{}};
  for (const auto& step : recipe.instructions) instructions.Append(step);
  out.Set("instructions", std::move(instructions));
  return out;
}

StatusOr<Recipe> RecipeFromJsonRecord(const Json& record) {
  if (!record.is_object()) {
    return Status::InvalidArgument("recipe record must be an object");
  }
  Recipe r;
  if (record.Get("id").is_number()) {
    r.id = static_cast<long long>(record.Get("id").AsNumber());
  }
  auto str_field = [&](const char* key) {
    const Json& v = record.Get(key);
    return v.is_string() ? v.AsString() : std::string();
  };
  r.title = str_field("title");
  r.continent = str_field("continent");
  r.region = str_field("region");
  r.country = str_field("country");
  const Json& ingredients = record.Get("ingredients");
  if (ingredients.is_array()) {
    for (const Json& item : ingredients.AsArray()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("ingredient must be an object");
      }
      IngredientLine line;
      auto get = [&](const char* key) {
        const Json& v = item.Get(key);
        return v.is_string() ? v.AsString() : std::string();
      };
      line.quantity = get("quantity");
      line.unit = get("unit");
      line.name = get("name");
      line.prep = get("prep");
      r.ingredients.push_back(std::move(line));
    }
  }
  const Json& instructions = record.Get("instructions");
  if (instructions.is_array()) {
    for (const Json& step : instructions.AsArray()) {
      if (!step.is_string()) {
        return Status::InvalidArgument("instruction must be a string");
      }
      r.instructions.push_back(step.AsString());
    }
  }
  return r;
}

Status SaveRecipesJsonl(const std::vector<Recipe>& recipes,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const Recipe& r : recipes) {
    out << RecipeToJsonRecord(r).Dump() << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<Recipe>> LoadRecipesJsonl(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for read: " + path);
  std::string raw((std::istreambuf_iterator<char>(file)),
                  std::istreambuf_iterator<char>());
  if (auto fired = FaultInjector::Instance().Hit("data.load.truncate")) {
    // Injected short read: the file vanishes mid-stream (NFS hiccup,
    // torn copy). The chopped tail must surface as the structured
    // parse error below, never as a crash or a silently smaller set.
    const size_t chop = static_cast<size_t>(std::max(fired->amount, 1));
    raw.resize(raw.size() > chop ? raw.size() - chop : 0);
  }
  std::istringstream in(raw);
  std::vector<Recipe> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto doc = Json::Parse(line);
    if (!doc.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          doc.status().message());
    }
    auto recipe = RecipeFromJsonRecord(*doc);
    if (!recipe.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          recipe.status().message());
    }
    out.push_back(std::move(*recipe));
  }
  return out;
}

}  // namespace rt
