#ifndef RATATOUILLE_DATA_DATASET_H_
#define RATATOUILLE_DATA_DATASET_H_

#include <vector>

#include "data/recipe.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace rt {

/// Train/validation/test partition of a recipe corpus.
struct DatasetSplits {
  std::vector<Recipe> train;
  std::vector<Recipe> val;
  std::vector<Recipe> test;
};

/// Shuffles (seeded) and partitions the corpus. Fractions must satisfy
/// val_frac + test_frac < 1; at least one recipe lands in train when the
/// corpus is non-empty.
DatasetSplits SplitDataset(const std::vector<Recipe>& corpus,
                           double val_frac, double test_frac,
                           uint64_t seed);

/// Encodes recipes to one flat token stream: each recipe's tagged string,
/// concatenated in order (the "one long string with all the recipes"
/// training layout, paper Sec. IV-B).
std::vector<int> EncodeCorpus(const Tokenizer& tokenizer,
                              const std::vector<Recipe>& recipes);

/// One training batch of next-token prediction windows.
struct Batch {
  int batch_size = 0;
  int seq_len = 0;
  /// Row-major [batch_size, seq_len] input ids.
  std::vector<int> inputs;
  /// Row-major [batch_size, seq_len] targets (inputs shifted by one).
  std::vector<int> targets;
  /// Target value excluded from the loss (padding); -1 = none.
  int ignore_index = -1;
};

/// Cuts each recipe into one training window: Encode(tagged + " "),
/// truncated to `seq_len + 1` tokens and padded with `pad_id`. Documents
/// always start at position 0, so transformer position embeddings are
/// trained on exactly the offsets generation visits (the paper's
/// "recipe ... used as a single training instance" layout, Sec. IV-B).
std::vector<std::vector<int>> BuildRecipeWindows(
    const Tokenizer& tokenizer, const std::vector<Recipe>& recipes,
    int seq_len, int pad_id);

/// Iterates next-token windows, shuffling order every epoch (seeded =>
/// deterministic). Two sources:
///  - a flat token stream, sliced into non-overlapping seq_len+1 windows;
///  - pre-cut per-document windows (see BuildRecipeWindows), where
///    trailing padding is excluded from the loss via Batch::ignore_index.
class BatchIterator {
 public:
  /// `stream` must outlive the iterator.
  BatchIterator(const std::vector<int>* stream, int batch_size, int seq_len,
                uint64_t seed);

  /// Window mode. Each window must have at least 2 tokens; longer windows
  /// are truncated to seq_len + 1, shorter ones padded with `pad_id`.
  BatchIterator(std::vector<std::vector<int>> windows, int batch_size,
                int seq_len, uint64_t seed, int pad_id);

  /// Fills `out` with the next batch; returns false at epoch end (call
  /// NextEpoch() to reshuffle and continue). Partial final batches are
  /// returned with a smaller batch_size.
  bool Next(Batch* out);

  /// Reshuffles windows for a new epoch.
  void NextEpoch();

  /// Number of full-or-partial batches per epoch.
  int BatchesPerEpoch() const;

  /// Number of windows available per epoch.
  int NumWindows() const {
    return static_cast<int>(stream_ != nullptr ? offsets_.size()
                                               : doc_windows_.size());
  }

 private:
  void FillRow(int window_index, int row, Batch* out) const;

  const std::vector<int>* stream_ = nullptr;       // stream mode
  std::vector<std::vector<int>> doc_windows_;       // window mode
  int pad_id_ = 0;
  int batch_size_;
  int seq_len_;
  Rng rng_;
  std::vector<int> offsets_;  // stream offsets or window indices
  size_t cursor_ = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_DATA_DATASET_H_
