#ifndef RATATOUILLE_DATA_RECIPE_H_
#define RATATOUILLE_DATA_RECIPE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rt {

/// One quantified ingredient line, e.g. "1/2 cup tomato , chopped".
struct IngredientLine {
  std::string quantity;  // "2", "1/2", "1 1/2", may be empty
  std::string unit;      // "cup", "tsp", ... may be empty
  std::string name;      // "tomato"
  std::string prep;      // "chopped", may be empty

  /// Rendered line: "<quantity> <unit> <name> , <prep>".
  std::string Render() const;

  bool operator==(const IngredientLine&) const = default;
};

/// A structured recipe record mirroring RecipeDB's schema: title, cuisine
/// metadata (continent/region/country), quantified ingredients and
/// step-by-step instructions (paper Sec. III).
struct Recipe {
  long long id = 0;
  std::string title;
  std::string continent;
  std::string region;
  std::string country;
  std::vector<IngredientLine> ingredients;
  std::vector<std::string> instructions;

  /// True when the record has a title, at least one ingredient and at
  /// least one instruction (the preprocessor drops incomplete records).
  bool IsComplete() const;

  /// Bare ingredient names in order.
  std::vector<std::string> IngredientNames() const;

  /// Serializes to the tagged training format (paper Fig. 2/3):
  ///   <RECIPE_START> <INPUT_START> a <INPUT_NEXT> b <INPUT_END>
  ///   <INGR_START> ... <INGR_END> <INSTR_START> ... <INSTR_END>
  ///   <TITLE_START> ... <TITLE_END> <RECIPE_END>
  /// Fractions are replaced by special tokens. When `with_input` is false
  /// the <INPUT_*> section (the user's ingredient-list prompt) is omitted.
  std::string ToTaggedString(bool with_input = true) const;

  /// The conditional-generation prompt prefix: everything up to and
  /// including <INGR_START> (ingredient names only, no quantities).
  std::string PromptPrefix() const;

  /// Free-text form resembling the raw scraped dataset before
  /// preprocessing (paper Fig. 1): title line, "Ingredients:" block and a
  /// running instruction paragraph.
  std::string ToRawString() const;

  /// Character length of the tagged form (the 2000-char clamp and the
  /// size-distribution statistics operate on this).
  size_t TaggedLength() const;

  bool operator==(const Recipe&) const = default;
};

/// Parses a tagged string (as produced by ToTaggedString or by a model's
/// sampler) back into a structured Recipe. Unknown/missing sections yield
/// empty fields rather than errors; a string with no recognizable tags
/// returns InvalidArgument.
StatusOr<Recipe> ParseTaggedRecipe(const std::string& tagged);

}  // namespace rt

#endif  // RATATOUILLE_DATA_RECIPE_H_
