#include "tensor/cache_arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rt {

CacheArena::CacheArena(size_t slot_floats, int slots_per_block)
    : slot_floats_(std::max<size_t>(slot_floats, 1)),
      slots_per_block_(std::max(slots_per_block, 1)) {}

float* CacheArena::Acquire() {
  float* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) {
      Block block;
      block.slots = slots_per_block_;
      block.data = std::make_unique<float[]>(
          slot_floats_ * static_cast<size_t>(block.slots));
      ++heap_allocs_;
      for (int s = 0; s < block.slots; ++s) {
        free_.push_back(block.data.get() + slot_floats_ * s);
      }
      blocks_.push_back(std::move(block));
    }
    slot = free_.back();
    free_.pop_back();
    ++in_use_;
  }
  // Zero outside the lock: recurrent decode state must start at zeros,
  // and a recycled slot still holds the previous sequence's cache.
  std::memset(slot, 0, slot_floats_ * sizeof(float));
  return slot;
}

void CacheArena::Release(float* slot) {
  if (slot == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  assert(in_use_ > 0);
  free_.push_back(slot);
  --in_use_;
}

int CacheArena::slots_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

int CacheArena::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int total = 0;
  for (const Block& block : blocks_) total += block.slots;
  return total;
}

int64_t CacheArena::heap_allocs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_allocs_;
}

}  // namespace rt
