#ifndef RATATOUILLE_TENSOR_TAPE_H_
#define RATATOUILLE_TENSOR_TAPE_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rt {

/// Handle to a node on a Tape.
using VarId = int;
inline constexpr VarId kInvalidVar = -1;

/// Define-by-run reverse-mode autodiff tape.
///
/// A Tape is built fresh for every training step: leaves are created for
/// inputs and parameters, ops append nodes with recorded backward closures,
/// and Backward(loss) propagates gradients in reverse creation order.
/// Parameter leaves carry an external gradient sink into which their
/// gradient is accumulated, so optimizers never touch the tape.
///
/// Not thread-safe; one tape per training thread.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Leaf with no gradient tracking (e.g. fixed masks).
  VarId Constant(Tensor value);

  /// Leaf whose gradient is wanted. If `grad_sink` is non-null, the
  /// gradient is accumulated (+=) into it by Backward(); the sink must
  /// outlive the tape and have the same shape as `value`.
  VarId Leaf(Tensor value, Tensor* grad_sink = nullptr);

  /// Forward value of a node.
  const Tensor& value(VarId id) const;

  /// Gradient of a node after Backward(); empty tensor if none flowed.
  const Tensor& grad(VarId id) const;

  /// Number of nodes recorded.
  size_t size() const { return nodes_.size(); }

  /// Drops all nodes (the tape can be reused for the next step).
  void Clear();

  // ---- Recorded operations --------------------------------------------

  /// y = a[m,k] @ b[k,n].
  VarId MatMul(VarId a, VarId b);
  /// y = a[m,k] @ b[n,k]^T (weight-tied output projections).
  VarId MatMulTransB(VarId a, VarId b);
  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  /// Element-wise product.
  VarId Mul(VarId a, VarId b);
  /// y = a * s for a compile-time constant s.
  VarId Scale(VarId a, float s);
  /// Adds bias[n] to every row of x[m,n].
  VarId AddRowBroadcast(VarId x, VarId bias);
  VarId Tanh(VarId x);
  VarId Sigmoid(VarId x);
  VarId Relu(VarId x);
  VarId Gelu(VarId x);
  /// Row-wise softmax.
  VarId SoftmaxRows(VarId x);
  /// Row-wise layer norm with affine params gain[n], bias[n].
  VarId LayerNorm(VarId x, VarId gain, VarId bias, float eps = 1e-5f);
  /// Gathers rows of the embedding table at `ids`.
  VarId Embedding(VarId table, std::vector<int> ids);
  /// Copies columns [c0, c1).
  VarId SliceCols(VarId x, int c0, int c1);
  /// Stacks matrices with equal column counts along rows.
  VarId ConcatRows(const std::vector<VarId>& xs);
  /// Inverted dropout: scales kept activations by 1/(1-p) during training;
  /// identity when `training` is false or p == 0.
  VarId Dropout(VarId x, float p, Rng* rng, bool training);
  /// Sum of all elements -> scalar node.
  VarId SumAll(VarId x);
  /// Mean of all elements -> scalar node.
  VarId MeanAll(VarId x);
  /// Mean cross-entropy of logits[m,V] vs targets[m]; rows with target ==
  /// ignore_index are excluded. Returns a scalar node.
  VarId CrossEntropy(VarId logits, std::vector<int> targets,
                     int ignore_index = -1);
  /// Fused multi-head causal self-attention. q, k, v are [B*T, H*Dh] with
  /// row index b*T + t and head h in columns [h*Dh, (h+1)*Dh). Scores are
  /// scaled by 1/sqrt(Dh) and future positions are masked. Returns the
  /// attention output with the same layout as the inputs.
  VarId CausalSelfAttention(VarId q, VarId k, VarId v, int batch, int seq,
                            int heads);

  /// Runs reverse-mode accumulation seeded with d(loss)=1. `loss` must be
  /// a scalar node. Gradients of parameter leaves are added into their
  /// sinks. May be called once per recorded graph.
  void Backward(VarId loss);

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // allocated lazily during Backward
    std::function<void()> backward;  // may be empty (leaves/constants)
    bool requires_grad = false;
    Tensor* grad_sink = nullptr;
  };

  VarId Emit(Tensor value, bool requires_grad,
             std::function<void()> backward);
  bool RequiresGrad(VarId id) const { return nodes_[id].requires_grad; }
  /// Accumulates `g` into the gradient buffer of `id` (no-op when the node
  /// does not require grad).
  void AccumGrad(VarId id, const Tensor& g);
  /// Returns the node's gradient, which must have been allocated.
  const Tensor& GradRef(VarId id) const;

  std::vector<Node> nodes_;
  Tensor empty_;
};

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_TAPE_H_
