// Compiled without -ffast-math (see src/tensor/CMakeLists.txt): the
// micro-kernel's determinism contract — one strictly k-ordered
// accumulation chain per C element, identical for every tile shape —
// relies on the compiler not reassociating float chains. Throughput
// comes from instruction-level parallelism across the 4x16 accumulator
// tile, not from reassociation.

#include "tensor/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "tensor/quant.h"
#include "tensor/thread_pool.h"
#include "util/obs.h"

namespace rt::kernels {
namespace {

/// Profiling wrapper for the dispatch-level entry points: when the
/// kernel profiler is off this is one relaxed-atomic branch; when on it
/// times the call and records flops = 2*m*n*k against `op`.
template <typename Fn>
inline void ProfiledGemm(obs::KernelProfiler::Op op, int m, int n, int k,
                         Fn&& fn) {
  if (!obs::ProfileEnabled()) {
    fn();
    return;
  }
  const auto start = obs::Now();
  fn();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      obs::Now() - start)
                      .count();
  obs::KernelProfiler::Instance().RecordOp(
      op, 2.0 * m * static_cast<double>(n) * k, ns);
}

/// K-slab depth: panels are consumed in fixed 256-deep slabs so the
/// active B slab stays L2-resident. Slab boundaries are constants, and
/// a C element's chain passes through a float store/reload between
/// slabs (value-preserving), so slabbing never changes results.
constexpr int kSlabK = 256;

/// Below this many flops (2*m*n*k) a GEMM runs single-threaded — the
/// fork/join overhead outweighs the work.
constexpr double kMinParallelFlops = 1 << 18;

/// One multiply-accumulate chain step. On FMA hardware this is an
/// explicit std::fma — a single correctly-rounded IEEE operation, so
/// every MicroKernel instantiation rounds identically (unlike compiler
/// contraction, which fuses inconsistently across template shapes; FP
/// contraction is therefore disabled for this file). Without FMA
/// hardware the separate mul+add rounds identically everywhere too.
inline float MacStep(float av, float bv, float acc) {
#ifdef __FMA__
  return std::fma(av, bv, acc);
#else
  return acc + av * bv;
#endif
}

/// Computes a kRowTile x kPanelWidth tile of C: MR rows of A against
/// one packed panel, over kc k-steps. Each acc[r][j] is one strictly
/// k-ordered chain; the j loop vectorizes. A is addressed generically
/// (a_row_stride/a_k_stride) so the same kernel serves normal and
/// transposed-A orientations.
template <int MR>
void MicroKernel(int kc, const float* a, std::ptrdiff_t a_row_stride,
                 std::ptrdiff_t a_k_stride, const float* panel, float* c,
                 int ldc, int nr, bool accumulate) {
  float acc[MR][kPanelWidth];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kPanelWidth; ++j) {
      acc[r][j] = (accumulate && j < nr) ? c[r * ldc + j] : 0.0f;
    }
  }
  // One advancing base pointer + MR fixed row offsets: the compiler
  // keeps the offsets in scalar registers, leaving the vector ports to
  // the accumulator tile.
  const float* ak = a;
  const float* bp = panel;
  for (int kk = 0; kk < kc; ++kk, ak += a_k_stride, bp += kPanelWidth) {
    for (int r = 0; r < MR; ++r) {
      const float av = ak[r * a_row_stride];
      for (int j = 0; j < kPanelWidth; ++j) {
        acc[r][j] = MacStep(av, bp[j], acc[r][j]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

void RunTile(int mr, int kc, const float* a, std::ptrdiff_t a_row_stride,
             std::ptrdiff_t a_k_stride, const float* panel, float* c,
             int ldc, int nr, bool accumulate) {
  switch (mr) {
    case 8:
      MicroKernel<8>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 7:
      MicroKernel<7>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 6:
      MicroKernel<6>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 5:
      MicroKernel<5>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 4:
      MicroKernel<4>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 3:
      MicroKernel<3>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    case 2:
      MicroKernel<2>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
    default:
      MicroKernel<1>(kc, a, a_row_stride, a_k_stride, panel, c, ldc, nr,
                     accumulate);
      break;
  }
}

/// Computes row tiles [tile0, tile1) against panels [p0, p1), full k.
/// Tiles and panels are globally indexed, so any partition of the
/// (tile, panel) space computes identical values.
void ComputeBlock(int tile0, int tile1, int p0, int p1, int m,
                  const float* a, std::ptrdiff_t a_row_stride,
                  std::ptrdiff_t a_k_stride, const PackedB& b, float* c,
                  int ldc, bool accumulate) {
  const int k = b.k();
  const int n = b.n();
  for (int k0 = 0; k0 < k; k0 += kSlabK) {
    const int kc = std::min(kSlabK, k - k0);
    const bool acc_slab = accumulate || k0 > 0;
    for (int t = tile0; t < tile1; ++t) {
      const int r0 = t * kRowTile;
      const int mr = std::min(kRowTile, m - r0);
      const float* a_tile = a + r0 * a_row_stride + k0 * a_k_stride;
      float* c_tile = c + static_cast<size_t>(r0) * ldc;
      for (int p = p0; p < p1; ++p) {
        const int c0 = p * kPanelWidth;
        const int nr = std::min(kPanelWidth, n - c0);
        RunTile(mr, kc, a_tile, a_row_stride, a_k_stride,
                b.panel(p) + static_cast<size_t>(k0) * kPanelWidth,
                c_tile + c0, ldc, nr, acc_slab);
      }
    }
  }
}

/// Parallel driver over pre-packed B. Partitions row tiles when there
/// are enough of them, otherwise column panels (the m=1 decode GEMV
/// case) — either way work items map to fixed output regions.
void GemmPackedStrided(int m, const float* a, std::ptrdiff_t a_row_stride,
                       std::ptrdiff_t a_k_stride, const PackedB& b,
                       float* c, int ldc, bool accumulate) {
  if (m <= 0 || b.empty()) return;
  const int tiles = (m + kRowTile - 1) / kRowTile;
  const int panels = b.num_panels();
  const auto pool = ThreadPool::Global();
  const int threads = pool->num_threads();
  const double flops = 2.0 * m * b.n() * b.k();
  if (threads <= 1 || flops < kMinParallelFlops) {
    ComputeBlock(0, tiles, 0, panels, m, a, a_row_stride, a_k_stride, b, c,
                 ldc, accumulate);
    return;
  }
  if (tiles >= threads) {
    const int items = std::min(tiles, threads * 4);
    pool->ParallelFor(items, [&](int it) {
      const int t0 = static_cast<int>(static_cast<long long>(it) * tiles /
                                      items);
      const int t1 = static_cast<int>(
          static_cast<long long>(it + 1) * tiles / items);
      ComputeBlock(t0, t1, 0, panels, m, a, a_row_stride, a_k_stride, b, c,
                   ldc, accumulate);
    });
  } else {
    const int items = std::min(panels, threads * 4);
    pool->ParallelFor(items, [&](int it) {
      const int q0 = static_cast<int>(static_cast<long long>(it) * panels /
                                      items);
      const int q1 = static_cast<int>(
          static_cast<long long>(it + 1) * panels / items);
      ComputeBlock(0, tiles, q0, q1, m, a, a_row_stride, a_k_stride, b, c,
                   ldc, accumulate);
    });
  }
}

/// Per-thread pack scratch for the pack-per-call entry points.
PackedB& PackScratch() {
  thread_local PackedB scratch;
  return scratch;
}

// ---------------------------------------------------------------------------
// Int8 micro-kernel family. Identical chain structure to the fp32
// kernel: each k step dequantizes one panel row lane-wise
// (scale[j] * q — one widening convert and one multiply, exact for int8
// magnitudes and bitwise identical regardless of which tile or thread
// performs it) and feeds the same MacStep chains. Slab boundaries, tile
// shapes and partitioning are shared constants with the fp32 driver, so
// the int8 path inherits the full determinism contract without new
// reasoning.
//
// The widening convert is hand-vectorized (AVX-512 / AVX2+FMA, scalar
// fallback). The rest of the kernel family trusts the autovectorizer,
// but GCC 12 lowers int8->float widening through a vpmovsxbw /
// vextracti128 / vpmovsxwd shuffle chain (and scalarizes
// __builtin_convertvector outright), which left the int8 GEMV 2.6x
// SLOWER than the fp32 GEMV it must beat. With vpmovsxbd + vcvtdq2ps
// the m=1 decode GEMV runs ~3x faster than packed fp32. Every lane of
// the intrinsic path computes exactly fma(av, float(q)*scale, acc) —
// the same correctly-rounded multiply feeding the same fused MacStep
// as the scalar fallback (-ffp-contract is off, so the compiler cannot
// merge the multiply into the FMA behind our back), so all three paths
// are bitwise interchangeable and the choice never leaks into results.
// ---------------------------------------------------------------------------

template <int MR>
void MicroKernelInt8(int kc, const float* a, std::ptrdiff_t a_row_stride,
                     std::ptrdiff_t a_k_stride, const std::int8_t* panel,
                     const float* scales, float* c, int ldc, int nr,
                     bool accumulate) {
#if defined(__AVX512F__) && defined(__FMA__)
  static_assert(kPanelWidth == 32, "int8 kernel assumes 32-lane panels");
  __m512 acc0[MR], acc1[MR];
  float edge[kPanelWidth];
  for (int r = 0; r < MR; ++r) {
    if (accumulate) {
      if (nr == kPanelWidth) {
        acc0[r] = _mm512_loadu_ps(c + r * ldc);
        acc1[r] = _mm512_loadu_ps(c + r * ldc + 16);
      } else {
        for (int j = 0; j < kPanelWidth; ++j) {
          edge[j] = j < nr ? c[r * ldc + j] : 0.0f;
        }
        acc0[r] = _mm512_loadu_ps(edge);
        acc1[r] = _mm512_loadu_ps(edge + 16);
      }
    } else {
      acc0[r] = _mm512_setzero_ps();
      acc1[r] = _mm512_setzero_ps();
    }
  }
  const __m512 s0 = _mm512_loadu_ps(scales);
  const __m512 s1 = _mm512_loadu_ps(scales + 16);
  const float* ak = a;
  const std::int8_t* bp = panel;
  for (int kk = 0; kk < kc; ++kk, ak += a_k_stride, bp += kPanelWidth) {
    const __m512 b0 = _mm512_mul_ps(
        _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp)))),
        s0);
    const __m512 b1 = _mm512_mul_ps(
        _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + 16)))),
        s1);
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(ak[r * a_row_stride]);
      acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm512_storeu_ps(edge, acc0[r]);
    _mm512_storeu_ps(edge + 16, acc1[r]);
    for (int j = 0; j < nr; ++j) c[r * ldc + j] = edge[j];
  }
#elif defined(__AVX2__) && defined(__FMA__)
  static_assert(kPanelWidth == 32, "int8 kernel assumes 32-lane panels");
  __m256 acc[MR][4];
  float edge[kPanelWidth];
  for (int r = 0; r < MR; ++r) {
    if (accumulate) {
      for (int j = 0; j < kPanelWidth; ++j) {
        edge[j] = j < nr ? c[r * ldc + j] : 0.0f;
      }
      for (int h = 0; h < 4; ++h) {
        acc[r][h] = _mm256_loadu_ps(edge + 8 * h);
      }
    } else {
      for (int h = 0; h < 4; ++h) acc[r][h] = _mm256_setzero_ps();
    }
  }
  __m256 sc[4];
  for (int h = 0; h < 4; ++h) sc[h] = _mm256_loadu_ps(scales + 8 * h);
  const float* ak = a;
  const std::int8_t* bp = panel;
  for (int kk = 0; kk < kc; ++kk, ak += a_k_stride, bp += kPanelWidth) {
    __m256 bv[4];
    for (int h = 0; h < 4; ++h) {
      bv[h] = _mm256_mul_ps(
          _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(bp + 8 * h)))),
          sc[h]);
    }
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(ak[r * a_row_stride]);
      for (int h = 0; h < 4; ++h) {
        acc[r][h] = _mm256_fmadd_ps(av, bv[h], acc[r][h]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int h = 0; h < 4; ++h) _mm256_storeu_ps(edge + 8 * h, acc[r][h]);
    for (int j = 0; j < nr; ++j) c[r * ldc + j] = edge[j];
  }
#else
  float acc[MR][kPanelWidth];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kPanelWidth; ++j) {
      acc[r][j] = (accumulate && j < nr) ? c[r * ldc + j] : 0.0f;
    }
  }
  const float* ak = a;
  const std::int8_t* bp = panel;
  for (int kk = 0; kk < kc; ++kk, ak += a_k_stride, bp += kPanelWidth) {
    for (int r = 0; r < MR; ++r) {
      const float av = ak[r * a_row_stride];
      for (int j = 0; j < kPanelWidth; ++j) {
        acc[r][j] =
            MacStep(av, static_cast<float>(bp[j]) * scales[j], acc[r][j]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
#endif
}

void RunTileInt8(int mr, int kc, const float* a, std::ptrdiff_t a_row_stride,
                 std::ptrdiff_t a_k_stride, const std::int8_t* panel,
                 const float* scales, float* c, int ldc, int nr,
                 bool accumulate) {
  switch (mr) {
    case 8:
      MicroKernelInt8<8>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 7:
      MicroKernelInt8<7>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 6:
      MicroKernelInt8<6>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 5:
      MicroKernelInt8<5>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 4:
      MicroKernelInt8<4>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 3:
      MicroKernelInt8<3>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    case 2:
      MicroKernelInt8<2>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
    default:
      MicroKernelInt8<1>(kc, a, a_row_stride, a_k_stride, panel, scales, c,
                         ldc, nr, accumulate);
      break;
  }
}

void ComputeBlockInt8(int tile0, int tile1, int p0, int p1, int m,
                      const float* a, std::ptrdiff_t a_row_stride,
                      std::ptrdiff_t a_k_stride, const PackedBInt8& b,
                      float* c, int ldc, bool accumulate) {
  const int k = b.k();
  const int n = b.n();
  for (int k0 = 0; k0 < k; k0 += kSlabK) {
    const int kc = std::min(kSlabK, k - k0);
    const bool acc_slab = accumulate || k0 > 0;
    for (int t = tile0; t < tile1; ++t) {
      const int r0 = t * kRowTile;
      const int mr = std::min(kRowTile, m - r0);
      const float* a_tile = a + r0 * a_row_stride + k0 * a_k_stride;
      float* c_tile = c + static_cast<size_t>(r0) * ldc;
      for (int p = p0; p < p1; ++p) {
        const int c0 = p * kPanelWidth;
        const int nr = std::min(kPanelWidth, n - c0);
        RunTileInt8(mr, kc, a_tile, a_row_stride, a_k_stride,
                    b.panel(p) + static_cast<size_t>(k0) * kPanelWidth,
                    b.panel_scales(p), c_tile + c0, ldc, nr, acc_slab);
      }
    }
  }
}

/// Parallel driver over pre-packed int8 B: the same fixed-output-region
/// partitioning as the fp32 GemmPackedStrided.
void GemmPackedInt8Strided(int m, const float* a,
                           std::ptrdiff_t a_row_stride,
                           std::ptrdiff_t a_k_stride, const PackedBInt8& b,
                           float* c, int ldc, bool accumulate) {
  if (m <= 0 || b.empty()) return;
  const int tiles = (m + kRowTile - 1) / kRowTile;
  const int panels = b.num_panels();
  const auto pool = ThreadPool::Global();
  const int threads = pool->num_threads();
  const double flops = 2.0 * m * b.n() * b.k();
  if (threads <= 1 || flops < kMinParallelFlops) {
    ComputeBlockInt8(0, tiles, 0, panels, m, a, a_row_stride, a_k_stride, b,
                     c, ldc, accumulate);
    return;
  }
  if (tiles >= threads) {
    const int items = std::min(tiles, threads * 4);
    pool->ParallelFor(items, [&](int it) {
      const int t0 = static_cast<int>(static_cast<long long>(it) * tiles /
                                      items);
      const int t1 = static_cast<int>(
          static_cast<long long>(it + 1) * tiles / items);
      ComputeBlockInt8(t0, t1, 0, panels, m, a, a_row_stride, a_k_stride, b,
                       c, ldc, accumulate);
    });
  } else {
    const int items = std::min(panels, threads * 4);
    pool->ParallelFor(items, [&](int it) {
      const int q0 = static_cast<int>(static_cast<long long>(it) * panels /
                                      items);
      const int q1 = static_cast<int>(
          static_cast<long long>(it + 1) * panels / items);
      ComputeBlockInt8(0, tiles, q0, q1, m, a, a_row_stride, a_k_stride, b,
                       c, ldc, accumulate);
    });
  }
}

}  // namespace

void PackedB::Pack(int k, int n, const float* b) {
  k_ = k;
  n_ = n;
  const int panels = num_panels();
  data_.resize(static_cast<size_t>(panels) * k * kPanelWidth);
  for (int p = 0; p < panels; ++p) {
    const int c0 = p * kPanelWidth;
    const int nr = std::min(kPanelWidth, n - c0);
    float* dst = data_.data() + static_cast<size_t>(p) * k * kPanelWidth;
    for (int kk = 0; kk < k; ++kk) {
      const float* src = b + static_cast<size_t>(kk) * n + c0;
      for (int j = 0; j < nr; ++j) dst[j] = src[j];
      for (int j = nr; j < kPanelWidth; ++j) dst[j] = 0.0f;
      dst += kPanelWidth;
    }
  }
}

void PackedB::PackTransposed(int n, int k, const float* b) {
  k_ = k;
  n_ = n;
  const int panels = num_panels();
  data_.resize(static_cast<size_t>(panels) * k * kPanelWidth);
  for (int p = 0; p < panels; ++p) {
    const int c0 = p * kPanelWidth;
    const int nr = std::min(kPanelWidth, n - c0);
    float* dst = data_.data() + static_cast<size_t>(p) * k * kPanelWidth;
    for (int kk = 0; kk < k; ++kk) {
      for (int j = 0; j < nr; ++j) {
        dst[j] = b[static_cast<size_t>(c0 + j) * k + kk];
      }
      for (int j = nr; j < kPanelWidth; ++j) dst[j] = 0.0f;
      dst += kPanelWidth;
    }
  }
}

void PackedBInt8::Pack(int k, int n, const float* b) {
  k_ = k;
  n_ = n;
  const int panels = num_panels();
  data_.resize(static_cast<size_t>(panels) * k * kPanelWidth);
  scales_.assign(static_cast<size_t>(panels) * kPanelWidth, 0.0f);
  for (int j = 0; j < n; ++j) {
    // Trained weights are finite by construction (the fp32 path would
    // already be producing NaNs otherwise); the checkpoint/save API is
    // where non-finite tensors get rejected with an error.
    quant::ChannelScale(b + j, k, n, &scales_[j + 0]);
  }
  // scales_ is panel-padded storage addressed as panel_scales(p)[j];
  // column j's scale lives at flat index j because panels are
  // kPanelWidth-aligned column ranges.
  for (int p = 0; p < panels; ++p) {
    const int c0 = p * kPanelWidth;
    const int nr = std::min(kPanelWidth, n - c0);
    const float* scale = scales_.data() + static_cast<size_t>(c0);
    std::int8_t* dst =
        data_.data() + static_cast<size_t>(p) * k * kPanelWidth;
    for (int kk = 0; kk < k; ++kk) {
      const float* src = b + static_cast<size_t>(kk) * n + c0;
      for (int j = 0; j < nr; ++j) {
        dst[j] = quant::QuantizeValue(src[j], scale[j]);
      }
      for (int j = nr; j < kPanelWidth; ++j) dst[j] = 0;
      dst += kPanelWidth;
    }
  }
}

void PackedBInt8::PackTransposed(int n, int k, const float* b) {
  k_ = k;
  n_ = n;
  const int panels = num_panels();
  data_.resize(static_cast<size_t>(panels) * k * kPanelWidth);
  scales_.assign(static_cast<size_t>(panels) * kPanelWidth, 0.0f);
  for (int j = 0; j < n; ++j) {
    quant::ChannelScale(b + static_cast<size_t>(j) * k, k, 1,
                        &scales_[j + 0]);
  }
  for (int p = 0; p < panels; ++p) {
    const int c0 = p * kPanelWidth;
    const int nr = std::min(kPanelWidth, n - c0);
    const float* scale = scales_.data() + static_cast<size_t>(c0);
    std::int8_t* dst =
        data_.data() + static_cast<size_t>(p) * k * kPanelWidth;
    for (int kk = 0; kk < k; ++kk) {
      for (int j = 0; j < nr; ++j) {
        dst[j] = quant::QuantizeValue(b[static_cast<size_t>(c0 + j) * k + kk],
                                      scale[j]);
      }
      for (int j = nr; j < kPanelWidth; ++j) dst[j] = 0;
      dst += kPanelWidth;
    }
  }
}

void PackedBInt8::PackQuantized(int k, int n, const std::int8_t* q,
                                const float* scales) {
  k_ = k;
  n_ = n;
  const int panels = num_panels();
  data_.resize(static_cast<size_t>(panels) * k * kPanelWidth);
  scales_.assign(static_cast<size_t>(panels) * kPanelWidth, 0.0f);
  for (int j = 0; j < n; ++j) scales_[j] = scales[j];
  for (int p = 0; p < panels; ++p) {
    const int c0 = p * kPanelWidth;
    const int nr = std::min(kPanelWidth, n - c0);
    std::int8_t* dst =
        data_.data() + static_cast<size_t>(p) * k * kPanelWidth;
    for (int kk = 0; kk < k; ++kk) {
      const std::int8_t* src = q + static_cast<size_t>(kk) * n + c0;
      for (int j = 0; j < nr; ++j) dst[j] = src[j];
      for (int j = nr; j < kPanelWidth; ++j) dst[j] = 0;
      dst += kPanelWidth;
    }
  }
}

KernelConfig& Config() {
  static KernelConfig config;
  return config;
}

void Gemm(int m, int n, int k, const float* a, const float* b, float* c) {
  ProfiledGemm(obs::KernelProfiler::Op::kGemm, m, n, k, [&] {
    if (Config().use_blocked) {
      GemmBlocked(m, n, k, a, b, c);
    } else {
      GemmRef(m, n, k, a, b, c);
    }
  });
}

void GemmTransB(int m, int n, int k, const float* a, const float* b,
                float* c) {
  ProfiledGemm(obs::KernelProfiler::Op::kGemmTransB, m, n, k, [&] {
    if (Config().use_blocked) {
      GemmTransBBlocked(m, n, k, a, b, c);
    } else {
      GemmTransBRef(m, n, k, a, b, c);
    }
  });
}

void GemmTransA(int m, int n, int k, const float* a, const float* b,
                float* c) {
  ProfiledGemm(obs::KernelProfiler::Op::kGemmTransA, m, n, k, [&] {
    if (Config().use_blocked) {
      GemmTransABlocked(m, n, k, a, b, c);
    } else {
      GemmTransARef(m, n, k, a, b, c);
    }
  });
}

void GemmBlocked(int m, int n, int k, const float* a, const float* b,
                 float* c) {
  PackedB& packed = PackScratch();
  packed.Pack(k, n, b);
  GemmPackedStrided(m, a, k, 1, packed, c, n, /*accumulate=*/false);
}

void GemmTransBBlocked(int m, int n, int k, const float* a, const float* b,
                       float* c) {
  PackedB& packed = PackScratch();
  packed.PackTransposed(n, k, b);
  GemmPackedStrided(m, a, k, 1, packed, c, n, /*accumulate=*/false);
}

void GemmTransABlocked(int m, int n, int k, const float* a, const float* b,
                       float* c) {
  PackedB& packed = PackScratch();
  packed.Pack(k, n, b);
  // A is [k, m] row-major: consecutive k for a fixed output row are m
  // apart, consecutive rows are adjacent.
  GemmPackedStrided(m, a, 1, m, packed, c, n, /*accumulate=*/false);
}

void GemmPacked(int m, const float* a, const PackedB& b, float* c,
                bool accumulate) {
  ProfiledGemm(obs::KernelProfiler::Op::kGemmPacked, m, b.n(), b.k(), [&] {
    GemmPackedStrided(m, a, b.k(), 1, b, c, b.n(), accumulate);
  });
}

void GemmPackedInt8(int m, const float* a, const PackedBInt8& b, float* c,
                    bool accumulate) {
  ProfiledGemm(obs::KernelProfiler::Op::kGemmPackedInt8, m, b.n(), b.k(),
               [&] {
                 GemmPackedInt8Strided(m, a, b.k(), 1, b, c, b.n(),
                                       accumulate);
               });
}

void GemmInt8Ref(int m, int n, int k, const float* a, const std::int8_t* bq,
                 const float* scales, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const std::int8_t* brow = bq + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) {
        crow[j] += av * (static_cast<float>(brow[j]) * scales[j]);
      }
    }
  }
}

void GemmRef(int m, int n, int k, const float* a, const float* b,
             float* c) {
  // i-k-j order: unit-stride inner loop over both B and C rows.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBRef(int m, int n, int k, const float* a, const float* b,
                   float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
}

void GemmTransARef(int m, int n, int k, const float* a, const float* b,
                   float* c) {
  for (size_t i = 0; i < static_cast<size_t>(m) * n; ++i) c[i] = 0.0f;
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<size_t>(kk) * m;
    const float* brow = b + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void AddBiasRow(int n, const float* bias, float* x) {
  for (int j = 0; j < n; ++j) x[j] += bias[j];
}

void LayerNormRow(int n, const float* x, const float* gain,
                  const float* bias, float eps, float* y, float* mean_out,
                  float* rstd_out) {
  double mean = 0.0;
  for (int j = 0; j < n; ++j) mean += x[j];
  mean /= n;
  double var = 0.0;
  for (int j = 0; j < n; ++j) {
    const double d = x[j] - mean;
    var += d * d;
  }
  var /= n;
  const float rstd = static_cast<float>(1.0 / std::sqrt(var + eps));
  const float fmean = static_cast<float>(mean);
  for (int j = 0; j < n; ++j) {
    y[j] = (x[j] - fmean) * rstd * gain[j] + bias[j];
  }
  if (mean_out != nullptr) *mean_out = fmean;
  if (rstd_out != nullptr) *rstd_out = rstd;
}

void GeluRow(int n, const float* x, float* y) {
  constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
  for (int j = 0; j < n; ++j) {
    const float v = x[j];
    y[j] = 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
  }
}

void AttendRow(const float* q, const float* keys, std::ptrdiff_t key_stride,
               const float* values, std::ptrdiff_t value_stride, int t_len,
               int dh, float scale, float* scores, float* out) {
  float mx = -1e30f;
  for (int u = 0; u < t_len; ++u) {
    const float* krow = keys + static_cast<size_t>(u) * key_stride;
    double acc = 0.0;
    for (int d = 0; d < dh; ++d) acc += q[d] * krow[d];
    scores[u] = static_cast<float>(acc) * scale;
    mx = std::max(mx, scores[u]);
  }
  double sum = 0.0;
  for (int u = 0; u < t_len; ++u) {
    scores[u] = std::exp(scores[u] - mx);
    sum += scores[u];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (int d = 0; d < dh; ++d) out[d] = 0.0f;
  for (int u = 0; u < t_len; ++u) {
    const float p = scores[u] * inv;
    const float* vrow = values + static_cast<size_t>(u) * value_stride;
    for (int d = 0; d < dh; ++d) out[d] += p * vrow[d];
  }
}

void LstmCellRow(int hidden_dim, const float* gates, float* h, float* c) {
  const float* gi = gates;
  const float* gf = gates + hidden_dim;
  const float* gg = gates + 2 * hidden_dim;
  const float* go = gates + 3 * hidden_dim;
  for (int j = 0; j < hidden_dim; ++j) {
    const float i = 1.0f / (1.0f + std::exp(-gi[j]));
    const float f = 1.0f / (1.0f + std::exp(-gf[j]));
    const float g = std::tanh(gg[j]);
    const float o = 1.0f / (1.0f + std::exp(-go[j]));
    const float cn = f * c[j] + i * g;
    c[j] = cn;
    h[j] = o * std::tanh(cn);
  }
}

void GatherRows(int m, int d, const float* table, const int* ids,
                float* out) {
  for (int i = 0; i < m; ++i) {
    const float* src = table + static_cast<size_t>(ids[i]) * d;
    float* dst = out + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
}

void GatherAddRows(int m, int d, const float* table, const int* ids,
                   float* out) {
  for (int i = 0; i < m; ++i) {
    const float* src = table + static_cast<size_t>(ids[i]) * d;
    float* dst = out + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) dst[j] += src[j];
  }
}

void GatherRowPtrs(int m, int d, const float* const* src_rows, float* out) {
  for (int i = 0; i < m; ++i) {
    const float* src = src_rows[i];
    float* dst = out + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
}

void ScatterRowPtrs(int m, int d, const float* src, float* const* dst_rows) {
  for (int i = 0; i < m; ++i) {
    const float* s = src + static_cast<size_t>(i) * d;
    float* dst = dst_rows[i];
    for (int j = 0; j < d; ++j) dst[j] = s[j];
  }
}

}  // namespace rt::kernels
