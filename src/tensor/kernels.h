#ifndef RATATOUILLE_TENSOR_KERNELS_H_
#define RATATOUILLE_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rt::kernels {

/// Column width of a packed-B panel (the micro-kernel's N tile): two
/// 512-bit registers per row.
inline constexpr int kPanelWidth = 32;
/// Rows per micro-kernel tile (the M tile). Together with the panel
/// width this gives the mul+add micro-kernel enough independent
/// accumulator chains to hide vector-add latency while still fitting
/// the accumulator tile in vector registers without spills.
inline constexpr int kRowTile = 6;

/// B packed into kPanelWidth-column panels for the GEMM micro-kernel:
/// panel p holds columns [p*16, p*16+16) as [k][16] with the ragged tail
/// zero-padded. Packing once and reusing across calls is the decode fast
/// path — weight matrices are packed lazily per Parameter version and
/// every token's GEMV runs straight on the panels.
class PackedB {
 public:
  /// Packs row-major B [k, n].
  void Pack(int k, int n, const float* b);

  /// Packs the transpose of row-major B [n, k] — i.e. the operand
  /// orientation of GemmTransB (logits = x @ table^T).
  void PackTransposed(int n, int k, const float* b);

  bool empty() const { return k_ == 0; }
  int k() const { return k_; }
  int n() const { return n_; }
  int num_panels() const { return (n_ + kPanelWidth - 1) / kPanelWidth; }
  const float* panel(int p) const {
    return data_.data() +
           static_cast<size_t>(p) * k_ * kPanelWidth;
  }

 private:
  std::vector<float> data_;
  int k_ = 0;
  int n_ = 0;
};

/// B quantized to int8 (per-column symmetric scales, zero-point 0) and
/// packed into the same kPanelWidth-column panel layout as PackedB.
/// Panels are 4x smaller than fp32, so the packed weight set of a model
/// that blew out L2 as fp32 becomes cache-resident — the decode GEMV is
/// weight-bandwidth-bound, so bytes moved is the whole game. The kernel
/// dequantizes on load (bv = scale[j] * q) and accumulates in fp32, so
/// it inherits the fp32 determinism contract verbatim.
class PackedBInt8 {
 public:
  /// Quantizes and packs row-major B [k, n], one scale per column.
  void Pack(int k, int n, const float* b);

  /// Quantizes and packs the transpose of row-major B [n, k] — the
  /// GemmTransB orientation (logits = x @ table^T); one scale per
  /// source row (= packed column).
  void PackTransposed(int n, int k, const float* b);

  /// Packs pre-quantized row-major q [k, n] with caller-supplied
  /// per-column scales (the quantized-checkpoint load path).
  void PackQuantized(int k, int n, const std::int8_t* q,
                     const float* scales);

  bool empty() const { return k_ == 0; }
  int k() const { return k_; }
  int n() const { return n_; }
  int num_panels() const { return (n_ + kPanelWidth - 1) / kPanelWidth; }
  const std::int8_t* panel(int p) const {
    return data_.data() + static_cast<size_t>(p) * k_ * kPanelWidth;
  }
  /// Per-column dequantization scales for panel p (kPanelWidth entries,
  /// ragged tail zero — matching the zero-padded panel columns).
  const float* panel_scales(int p) const {
    return scales_.data() + static_cast<size_t>(p) * kPanelWidth;
  }

 private:
  std::vector<std::int8_t> data_;
  std::vector<float> scales_;  // padded to num_panels() * kPanelWidth
  int k_ = 0;
  int n_ = 0;
};

/// Process-wide kernel dispatch. Blocked kernels are the default; parity
/// tests flip use_blocked to run the reference implementations through
/// the same ops:: call sites. use_int8 switches the inference weight
/// GEMMs (Linear::ForwardRawTo, the LSTM gate GEMVs, the GPT-2 tied
/// head) onto int8 packed weights with fp32 activations/accumulation —
/// the `--quant int8` serving mode. Training tape paths ignore it.
struct KernelConfig {
  bool use_blocked = true;
  bool use_int8 = false;
};
KernelConfig& Config();

// ---------------------------------------------------------------------------
// GEMM entry points. All write C (no implicit accumulation); C is
// row-major [m, n] and fully overwritten. Dispatch honors Config().
//
// Determinism contract: every C element is accumulated by a single
// chain in strictly increasing k order, and thread partitioning only
// splits rows (micro-tile-aligned) or column panels — results are
// bitwise identical for any thread count, and a row's value does not
// depend on how many other rows the call computes. The incremental
// KV-cache decode path (m = 1) therefore reproduces the batched
// forward (m = seq) exactly.
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n].
void Gemm(int m, int n, int k, const float* a, const float* b, float* c);

/// C[m,n] = A[m,k] * B[n,k]^T.
void GemmTransB(int m, int n, int k, const float* a, const float* b,
                float* c);

/// C[m,n] = A[k,m]^T * B[k,n].
void GemmTransA(int m, int n, int k, const float* a, const float* b,
                float* c);

// Blocked implementations (pack-per-call; parallel over the pool).
void GemmBlocked(int m, int n, int k, const float* a, const float* b,
                 float* c);
void GemmTransBBlocked(int m, int n, int k, const float* a, const float* b,
                       float* c);
void GemmTransABlocked(int m, int n, int k, const float* a, const float* b,
                       float* c);

// Reference implementations (naive loops, single-threaded).
void GemmRef(int m, int n, int k, const float* a, const float* b, float* c);
void GemmTransBRef(int m, int n, int k, const float* a, const float* b,
                   float* c);
void GemmTransARef(int m, int n, int k, const float* a, const float* b,
                   float* c);

/// C[m, b.n()] (+)= A[m, b.k()] * B using pre-packed panels — the
/// repeated-weight fast path. A is row-major with tight stride b.k();
/// C has tight stride b.n(). With accumulate, C's prior contents join
/// each element's chain before the k loop.
void GemmPacked(int m, const float* a, const PackedB& b, float* c,
                bool accumulate);

/// Int8 twin of GemmPacked: C[m, b.n()] (+)= A[m, b.k()] * dequant(B).
/// Same tile/panel partitioning, k-slabbing and strictly k-ordered
/// per-element chains as the fp32 kernel, so results are bitwise
/// identical across thread counts and batch sizes (m=1 reproduces the
/// corresponding row of any batched call exactly).
void GemmPackedInt8(int m, const float* a, const PackedBInt8& b, float* c,
                    bool accumulate);

/// Reference int8 GEMM (naive loops, single-threaded): C[m,n] =
/// A[m,k] * (scales[j] * Bq[k,n]) with row-major quantized Bq — the
/// numeric oracle for GemmPackedInt8 parity tests.
void GemmInt8Ref(int m, int n, int k, const float* a, const std::int8_t* bq,
                 const float* scales, float* c);

// ---------------------------------------------------------------------------
// Strict row helpers shared by the batched and incremental decode paths.
// This translation unit is compiled without -ffast-math, so calling the
// same helper from both paths yields bit-identical rows — the KV-cache
// vs. naive-decode parity guarantee.
// ---------------------------------------------------------------------------

/// x[j] += bias[j].
void AddBiasRow(int n, const float* bias, float* x);

/// y = LayerNorm(x) * gain + bias over one row. mean_out/rstd_out are
/// optional (backward cache).
void LayerNormRow(int n, const float* x, const float* gain,
                  const float* bias, float eps, float* y, float* mean_out,
                  float* rstd_out);

/// y[j] = gelu(x[j]) (tanh approximation, matching ops::Gelu).
void GeluRow(int n, const float* x, float* y);

/// One attention row for one head: scaled dot-product scores of q
/// against t_len cached keys, softmax, weighted sum of values into
/// out[dh]. keys/values are strided row-major (stride in floats, head
/// column offset applied by the caller); scores is caller scratch of
/// t_len floats.
void AttendRow(const float* q, const float* keys, std::ptrdiff_t key_stride,
               const float* values, std::ptrdiff_t value_stride, int t_len,
               int dh, float scale, float* scores, float* out);

/// One LSTM cell update from pre-activation gates [4H] in i|f|g|o
/// order: c and h ([H] each) are updated in place.
void LstmCellRow(int hidden_dim, const float* gates, float* h, float* c);

// ---------------------------------------------------------------------------
// Batched gather/scatter helpers for the continuous-batching decode
// path: per-row activations move between a shared [m, d] block (where
// the blocked m>1 GEMMs run) and per-sequence cache storage.
// ---------------------------------------------------------------------------

/// out[i] = table[ids[i]] for m rows of d floats (embedding gather).
void GatherRows(int m, int d, const float* table, const int* ids,
                float* out);

/// out[i] += table[ids[i]] (e.g. the position-embedding add on top of a
/// token-embedding gather).
void GatherAddRows(int m, int d, const float* table, const int* ids,
                   float* out);

/// Copies src_rows[i] ([d] floats each) into row i of out [m, d].
void GatherRowPtrs(int m, int d, const float* const* src_rows, float* out);

/// Scatters row i of src [m, d] to dst_rows[i] (KV-cache writeback).
void ScatterRowPtrs(int m, int d, const float* src, float* const* dst_rows);

}  // namespace rt::kernels

#endif  // RATATOUILLE_TENSOR_KERNELS_H_
