#ifndef RATATOUILLE_TENSOR_QUANT_H_
#define RATATOUILLE_TENSOR_QUANT_H_

#include <cstddef>
#include <cstdint>

namespace rt::quant {

/// Symmetric int8 range: quantized values live in [-127, 127] (the
/// -128 slot is unused so negation stays in range and the scheme is
/// symmetric around zero — zero_point is always 0).
inline constexpr int kQMax = 127;

/// Per-channel symmetric scale over `count` strided floats: absmax /
/// 127, or 0.0f for an all-zero channel (quantized values are then all
/// zero and dequantization reproduces the zeros exactly). Returns false
/// without writing *scale_out when any value is non-finite — quantizing
/// NaN/Inf weights would silently corrupt the model, so callers must
/// reject the tensor instead.
bool ChannelScale(const float* x, int count, std::ptrdiff_t stride,
                  float* scale_out);

/// Rounds v/scale to the nearest int (ties to even, the default FP
/// rounding mode) and clamps to [-127, 127]. scale == 0 means the
/// channel was all-zero; every value quantizes to 0.
std::int8_t QuantizeValue(float v, float scale);

inline float DequantizeValue(std::int8_t q, float scale) {
  return scale * static_cast<float>(q);
}

/// Quantizes row-major w [rows, cols] with one scale per column (the
/// output-channel axis of a y = x W layer weight). q receives
/// rows*cols values, scales receives cols. Returns false — leaving the
/// outputs unspecified — if any weight is non-finite.
bool QuantizePerColumn(const float* w, int rows, int cols, std::int8_t* q,
                       float* scales);

/// Inverse of QuantizePerColumn: w[r, c] = q[r, c] * scales[c].
void DequantizePerColumn(const std::int8_t* q, int rows, int cols,
                         const float* scales, float* w);

/// Quantizes row-major w [rows, cols] with one scale per row (the
/// orientation of a weight-tied embedding table consumed as logits =
/// x @ table^T: each vocabulary row is an output channel). Returns
/// false on non-finite input.
bool QuantizePerRow(const float* w, int rows, int cols, std::int8_t* q,
                    float* scales);

void DequantizePerRow(const std::int8_t* q, int rows, int cols,
                      const float* scales, float* w);

}  // namespace rt::quant

#endif  // RATATOUILLE_TENSOR_QUANT_H_
