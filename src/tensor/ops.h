#ifndef RATATOUILLE_TENSOR_OPS_H_
#define RATATOUILLE_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace rt::ops {

// Pure forward/backward kernels shared by the autograd tape (training) and
// the raw inference paths (generation with KV cache). All 2-D tensors are
// row-major; batch/time dimensions are folded into rows by callers.

/// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[n,k]^T. Used for output projections with weight
/// tying and for gradient computations.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// C[m,n] = A[k,m]^T * B[k,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// Element-wise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Element-wise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Element-wise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s.
Tensor Scale(const Tensor& a, float s);

/// x[m,n] with row vector bias[n] added to every row.
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Column-wise sum of x[m,n] -> [n]. (Gradient of AddRowBroadcast.)
Tensor SumRows(const Tensor& x);

/// Element-wise activations.
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Relu(const Tensor& x);
/// Gaussian error linear unit, tanh approximation (as in GPT-2).
Tensor Gelu(const Tensor& x);

/// Backward of tanh given the forward output y: dx = dy * (1 - y^2).
Tensor TanhBackward(const Tensor& y, const Tensor& dy);
/// Backward of sigmoid given the forward output y: dx = dy * y * (1 - y).
Tensor SigmoidBackward(const Tensor& y, const Tensor& dy);
/// Backward of relu given the input x.
Tensor ReluBackward(const Tensor& x, const Tensor& dy);
/// Backward of gelu (tanh approximation) given the input x.
Tensor GeluBackward(const Tensor& x, const Tensor& dy);

/// Row-wise softmax of x[m,n].
Tensor SoftmaxRows(const Tensor& x);

/// Backward of row-wise softmax given output y and upstream dy.
Tensor SoftmaxRowsBackward(const Tensor& y, const Tensor& dy);

/// Row-wise log-softmax of x[m,n].
Tensor LogSoftmaxRows(const Tensor& x);

/// Cache needed to backprop layer norm.
struct LayerNormCache {
  std::vector<float> mean;  // per row
  std::vector<float> rstd;  // per row: 1/sqrt(var + eps)
};

/// Row-wise layer normalization with affine gain/bias:
/// y = (x - mean) * rstd * gain + bias. gain/bias have shape [n].
Tensor LayerNormRows(const Tensor& x, const Tensor& gain, const Tensor& bias,
                     float eps, LayerNormCache* cache);

/// Backward of LayerNormRows. Outputs dx; accumulates into dgain/dbias.
Tensor LayerNormRowsBackward(const Tensor& x, const Tensor& gain,
                             const LayerNormCache& cache, const Tensor& dy,
                             Tensor* dgain, Tensor* dbias);

/// Gathers rows of table[V,D] by ids -> [len(ids), D].
Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& ids);

/// Scatters dy rows back into dtable (+=) at positions ids.
void EmbeddingScatterAdd(const std::vector<int>& ids, const Tensor& dy,
                         Tensor* dtable);

/// Copies columns [c0, c1) of x[m,n] -> [m, c1-c0].
Tensor SliceCols(const Tensor& x, int c0, int c1);

/// Accumulates dy[m, c1-c0] into columns [c0, c1) of dx[m,n].
void SliceColsScatterAdd(const Tensor& dy, int c0, Tensor* dx);

/// Concatenates matrices with equal row counts along columns.
Tensor ConcatCols(const std::vector<const Tensor*>& xs);

/// x[m,n] -> x^T [n,m].
Tensor Transpose(const Tensor& x);

/// Mean cross-entropy of logits[m,V] against integer targets[m].
/// Rows whose target equals `ignore_index` contribute nothing.
/// If `probs` is non-null it receives softmax(logits) for the backward pass.
float CrossEntropyFromLogits(const Tensor& logits,
                             const std::vector<int>& targets,
                             int ignore_index, Tensor* probs);

/// Backward of mean cross-entropy: dlogits = (probs - onehot) / n_valid,
/// scaled by upstream dloss; ignored rows get zero gradient.
Tensor CrossEntropyBackward(const Tensor& probs,
                            const std::vector<int>& targets,
                            int ignore_index, float dloss);

}  // namespace rt::ops

#endif  // RATATOUILLE_TENSOR_OPS_H_
