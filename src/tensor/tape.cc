#include "tensor/tape.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "tensor/ops.h"
#include "tensor/thread_pool.h"

namespace rt {

VarId Tape::Emit(Tensor value, bool requires_grad,
                 std::function<void()> backward) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = requires_grad;
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return static_cast<VarId>(nodes_.size()) - 1;
}

VarId Tape::Constant(Tensor value) {
  return Emit(std::move(value), /*requires_grad=*/false, nullptr);
}

VarId Tape::Leaf(Tensor value, Tensor* grad_sink) {
  VarId id = Emit(std::move(value), /*requires_grad=*/true, nullptr);
  nodes_[id].grad_sink = grad_sink;
  if (grad_sink != nullptr) {
    assert(grad_sink->SameShape(nodes_[id].value));
  }
  return id;
}

const Tensor& Tape::value(VarId id) const {
  assert(id >= 0 && id < static_cast<VarId>(nodes_.size()));
  return nodes_[id].value;
}

const Tensor& Tape::grad(VarId id) const {
  assert(id >= 0 && id < static_cast<VarId>(nodes_.size()));
  return nodes_[id].grad;
}

void Tape::Clear() { nodes_.clear(); }

void Tape::AccumGrad(VarId id, const Tensor& g) {
  Node& node = nodes_[id];
  if (!node.requires_grad) return;
  if (node.grad.empty()) {
    node.grad = Tensor::Zeros(node.value.shape());
  }
  node.grad.Add(g);
}

const Tensor& Tape::GradRef(VarId id) const { return nodes_[id].grad; }

VarId Tape::MatMul(VarId a, VarId b) {
  Tensor y = ops::MatMul(value(a), value(b));
  bool rg = RequiresGrad(a) || RequiresGrad(b);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, b] {
      const Tensor& dy = GradRef(id);
      if (RequiresGrad(a)) AccumGrad(a, ops::MatMulTransB(dy, value(b)));
      if (RequiresGrad(b)) AccumGrad(b, ops::MatMulTransA(value(a), dy));
    };
  }
  return id;
}

VarId Tape::MatMulTransB(VarId a, VarId b) {
  Tensor y = ops::MatMulTransB(value(a), value(b));
  bool rg = RequiresGrad(a) || RequiresGrad(b);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, b] {
      const Tensor& dy = GradRef(id);
      // y = a b^T: da = dy b ; db = dy^T a.
      if (RequiresGrad(a)) AccumGrad(a, ops::MatMul(dy, value(b)));
      if (RequiresGrad(b)) AccumGrad(b, ops::MatMulTransA(dy, value(a)));
    };
  }
  return id;
}

VarId Tape::Add(VarId a, VarId b) {
  Tensor y = ops::Add(value(a), value(b));
  bool rg = RequiresGrad(a) || RequiresGrad(b);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, b] {
      const Tensor& dy = GradRef(id);
      AccumGrad(a, dy);
      AccumGrad(b, dy);
    };
  }
  return id;
}

VarId Tape::Sub(VarId a, VarId b) {
  Tensor y = ops::Sub(value(a), value(b));
  bool rg = RequiresGrad(a) || RequiresGrad(b);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, b] {
      const Tensor& dy = GradRef(id);
      AccumGrad(a, dy);
      AccumGrad(b, ops::Scale(dy, -1.0f));
    };
  }
  return id;
}

VarId Tape::Mul(VarId a, VarId b) {
  Tensor y = ops::Mul(value(a), value(b));
  bool rg = RequiresGrad(a) || RequiresGrad(b);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, b] {
      const Tensor& dy = GradRef(id);
      if (RequiresGrad(a)) AccumGrad(a, ops::Mul(dy, value(b)));
      if (RequiresGrad(b)) AccumGrad(b, ops::Mul(dy, value(a)));
    };
  }
  return id;
}

VarId Tape::Scale(VarId a, float s) {
  Tensor y = ops::Scale(value(a), s);
  bool rg = RequiresGrad(a);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, a, s] {
      AccumGrad(a, ops::Scale(GradRef(id), s));
    };
  }
  return id;
}

VarId Tape::AddRowBroadcast(VarId x, VarId bias) {
  Tensor y = ops::AddRowBroadcast(value(x), value(bias));
  bool rg = RequiresGrad(x) || RequiresGrad(bias);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x, bias] {
      const Tensor& dy = GradRef(id);
      if (RequiresGrad(x)) AccumGrad(x, dy);
      if (RequiresGrad(bias)) AccumGrad(bias, ops::SumRows(dy));
    };
  }
  return id;
}

VarId Tape::Tanh(VarId x) {
  Tensor y = ops::Tanh(value(x));
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      AccumGrad(x, ops::TanhBackward(value(id), GradRef(id)));
    };
  }
  return id;
}

VarId Tape::Sigmoid(VarId x) {
  Tensor y = ops::Sigmoid(value(x));
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      AccumGrad(x, ops::SigmoidBackward(value(id), GradRef(id)));
    };
  }
  return id;
}

VarId Tape::Relu(VarId x) {
  Tensor y = ops::Relu(value(x));
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      AccumGrad(x, ops::ReluBackward(value(x), GradRef(id)));
    };
  }
  return id;
}

VarId Tape::Gelu(VarId x) {
  Tensor y = ops::Gelu(value(x));
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      AccumGrad(x, ops::GeluBackward(value(x), GradRef(id)));
    };
  }
  return id;
}

VarId Tape::SoftmaxRows(VarId x) {
  Tensor y = ops::SoftmaxRows(value(x));
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      AccumGrad(x, ops::SoftmaxRowsBackward(value(id), GradRef(id)));
    };
  }
  return id;
}

VarId Tape::LayerNorm(VarId x, VarId gain, VarId bias, float eps) {
  auto cache = std::make_shared<ops::LayerNormCache>();
  Tensor y =
      ops::LayerNormRows(value(x), value(gain), value(bias), eps, cache.get());
  bool rg = RequiresGrad(x) || RequiresGrad(gain) || RequiresGrad(bias);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x, gain, bias, cache] {
      const Tensor& dy = GradRef(id);
      Tensor dgain = Tensor::Zeros(value(gain).shape());
      Tensor dbias = Tensor::Zeros(value(bias).shape());
      Tensor dx = ops::LayerNormRowsBackward(value(x), value(gain), *cache,
                                             dy, &dgain, &dbias);
      if (RequiresGrad(x)) AccumGrad(x, dx);
      if (RequiresGrad(gain)) AccumGrad(gain, dgain);
      if (RequiresGrad(bias)) AccumGrad(bias, dbias);
    };
  }
  return id;
}

VarId Tape::Embedding(VarId table, std::vector<int> ids) {
  Tensor y = ops::EmbeddingGather(value(table), ids);
  bool rg = RequiresGrad(table);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    auto ids_ptr = std::make_shared<std::vector<int>>(std::move(ids));
    nodes_[id].backward = [this, id, table, ids_ptr] {
      Tensor dtable = Tensor::Zeros(value(table).shape());
      ops::EmbeddingScatterAdd(*ids_ptr, GradRef(id), &dtable);
      AccumGrad(table, dtable);
    };
  }
  return id;
}

VarId Tape::SliceCols(VarId x, int c0, int c1) {
  Tensor y = ops::SliceCols(value(x), c0, c1);
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x, c0] {
      Tensor dx = Tensor::Zeros(value(x).shape());
      ops::SliceColsScatterAdd(GradRef(id), c0, &dx);
      AccumGrad(x, dx);
    };
  }
  return id;
}

VarId Tape::ConcatRows(const std::vector<VarId>& xs) {
  assert(!xs.empty());
  const int n = value(xs[0]).cols();
  int total_rows = 0;
  bool rg = false;
  for (VarId x : xs) {
    assert(value(x).ndim() == 2 && value(x).cols() == n);
    total_rows += value(x).rows();
    rg = rg || RequiresGrad(x);
  }
  Tensor y({total_rows, n});
  int row = 0;
  for (VarId x : xs) {
    const Tensor& t = value(x);
    const size_t bytes_rows = static_cast<size_t>(t.rows()) * n;
    float* dst = y.data() + static_cast<size_t>(row) * n;
    const float* src = t.data();
    for (size_t i = 0; i < bytes_rows; ++i) dst[i] = src[i];
    row += t.rows();
  }
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    auto parts = std::make_shared<std::vector<VarId>>(xs);
    nodes_[id].backward = [this, id, parts] {
      const Tensor& dy = GradRef(id);
      const int cols = dy.cols();
      int r = 0;
      for (VarId x : *parts) {
        const int rows = value(x).rows();
        Tensor dx({rows, cols});
        const float* src = dy.data() + static_cast<size_t>(r) * cols;
        float* dst = dx.data();
        for (size_t i = 0; i < static_cast<size_t>(rows) * cols; ++i) {
          dst[i] = src[i];
        }
        AccumGrad(x, dx);
        r += rows;
      }
    };
  }
  return id;
}

VarId Tape::Dropout(VarId x, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) {
    // Identity pass-through node keeps graph structure uniform.
    Tensor y = value(x);
    bool rg = RequiresGrad(x);
    VarId id = Emit(std::move(y), rg, nullptr);
    if (rg) {
      nodes_[id].backward = [this, id, x] { AccumGrad(x, GradRef(id)); };
    }
    return id;
  }
  assert(p < 1.0f);
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  auto mask = std::make_shared<Tensor>(Tensor::Zeros(value(x).shape()));
  Tensor y = value(x);
  for (size_t i = 0; i < y.numel(); ++i) {
    if (rng->NextFloat() < keep) {
      (*mask)[i] = inv_keep;
      y[i] *= inv_keep;
    } else {
      y[i] = 0.0f;
    }
  }
  bool rg = RequiresGrad(x);
  VarId id = Emit(std::move(y), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x, mask] {
      AccumGrad(x, ops::Mul(GradRef(id), *mask));
    };
  }
  return id;
}

VarId Tape::SumAll(VarId x) {
  bool rg = RequiresGrad(x);
  VarId id = Emit(Tensor::Scalar(value(x).Sum()), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x] {
      const float d = GradRef(id).item();
      AccumGrad(x, Tensor::Full(value(x).shape(), d));
    };
  }
  return id;
}

VarId Tape::MeanAll(VarId x) {
  const float n = static_cast<float>(value(x).numel());
  bool rg = RequiresGrad(x);
  VarId id = Emit(Tensor::Scalar(value(x).Mean()), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, x, n] {
      const float d = GradRef(id).item() / n;
      AccumGrad(x, Tensor::Full(value(x).shape(), d));
    };
  }
  return id;
}

VarId Tape::CrossEntropy(VarId logits, std::vector<int> targets,
                         int ignore_index) {
  auto probs = std::make_shared<Tensor>();
  float loss = ops::CrossEntropyFromLogits(value(logits), targets,
                                           ignore_index, probs.get());
  bool rg = RequiresGrad(logits);
  VarId id = Emit(Tensor::Scalar(loss), rg, nullptr);
  if (rg) {
    auto targets_ptr = std::make_shared<std::vector<int>>(std::move(targets));
    nodes_[id].backward = [this, id, logits, probs, targets_ptr,
                           ignore_index] {
      const float dloss = GradRef(id).item();
      AccumGrad(logits, ops::CrossEntropyBackward(*probs, *targets_ptr,
                                                  ignore_index, dloss));
    };
  }
  return id;
}

VarId Tape::CausalSelfAttention(VarId q, VarId k, VarId v, int batch,
                                int seq, int heads) {
  const Tensor& qt = value(q);
  const Tensor& kt = value(k);
  const Tensor& vt = value(v);
  assert(qt.SameShape(kt) && qt.SameShape(vt));
  assert(qt.rows() == batch * seq);
  assert(qt.cols() % heads == 0);
  const int dh = qt.cols() / heads;
  const int hd = qt.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Softmax probabilities cached for backward: row ((b*H + h)*T + t).
  auto probs = std::make_shared<Tensor>(
      Tensor::Zeros({batch * heads * seq, seq}));
  Tensor out({batch * seq, hd});

  // Parallel over (batch, head): each item reads shared q/k/v but
  // writes disjoint probs rows and disjoint out column ranges, so the
  // partition is race-free and the values thread-count-independent.
  ParallelFor(batch * heads, [&](int bh) {
    const int b = bh / heads;
    const int h = bh % heads;
    const int col0 = h * dh;
    for (int t = 0; t < seq; ++t) {
      const float* qrow =
          qt.data() + static_cast<size_t>(b * seq + t) * hd + col0;
      float* prow = probs->data() +
                    static_cast<size_t>((b * heads + h) * seq + t) * seq;
      // Scores over u <= t with running max for stable softmax.
      float mx = -1e30f;
      for (int u = 0; u <= t; ++u) {
        const float* krow =
            kt.data() + static_cast<size_t>(b * seq + u) * hd + col0;
        double acc = 0.0;
        for (int d = 0; d < dh; ++d) acc += qrow[d] * krow[d];
        prow[u] = static_cast<float>(acc) * scale;
        mx = std::max(mx, prow[u]);
      }
      double sum = 0.0;
      for (int u = 0; u <= t; ++u) {
        prow[u] = std::exp(prow[u] - mx);
        sum += prow[u];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (int u = 0; u <= t; ++u) prow[u] *= inv;
      // Masked positions u > t stay exactly zero.
      float* orow =
          out.data() + static_cast<size_t>(b * seq + t) * hd + col0;
      for (int d = 0; d < dh; ++d) orow[d] = 0.0f;
      for (int u = 0; u <= t; ++u) {
        const float p = prow[u];
        if (p == 0.0f) continue;
        const float* vrow =
            vt.data() + static_cast<size_t>(b * seq + u) * hd + col0;
        for (int d = 0; d < dh; ++d) orow[d] += p * vrow[d];
      }
    }
  });

  bool rg = RequiresGrad(q) || RequiresGrad(k) || RequiresGrad(v);
  VarId id = Emit(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id].backward = [this, id, q, k, v, batch, seq, heads, dh, hd,
                           scale, probs] {
      const Tensor& dy = GradRef(id);
      const Tensor& qt2 = value(q);
      const Tensor& kt2 = value(k);
      const Tensor& vt2 = value(v);
      Tensor dq = Tensor::Zeros(qt2.shape());
      Tensor dk = Tensor::Zeros(kt2.shape());
      Tensor dv = Tensor::Zeros(vt2.shape());
      // Parallel over (batch, head): dq/dk/dv writes for one item stay
      // inside batch row b and head column range [col0, col0 + dh), so
      // items never alias. dp is per-item scratch.
      ParallelFor(batch * heads, [&](int bh) {
        const int b = bh / heads;
        const int h = bh % heads;
        std::vector<float> dp(seq);
        {
          const int col0 = h * dh;
          for (int t = 0; t < seq; ++t) {
            const float* prow =
                probs->data() +
                static_cast<size_t>((b * heads + h) * seq + t) * seq;
            const float* dyrow =
                dy.data() + static_cast<size_t>(b * seq + t) * hd + col0;
            // dV and dP.
            for (int u = 0; u <= t; ++u) {
              const float p = prow[u];
              float* dvrow =
                  dv.data() + static_cast<size_t>(b * seq + u) * hd + col0;
              const float* vrow =
                  vt2.data() + static_cast<size_t>(b * seq + u) * hd + col0;
              double acc = 0.0;
              for (int d = 0; d < dh; ++d) {
                dvrow[d] += p * dyrow[d];
                acc += dyrow[d] * vrow[d];
              }
              dp[u] = static_cast<float>(acc);
            }
            // Softmax backward restricted to valid positions.
            double dot = 0.0;
            for (int u = 0; u <= t; ++u) dot += prow[u] * dp[u];
            const float* qrow =
                qt2.data() + static_cast<size_t>(b * seq + t) * hd + col0;
            float* dqrow =
                dq.data() + static_cast<size_t>(b * seq + t) * hd + col0;
            for (int u = 0; u <= t; ++u) {
              const float ds =
                  prow[u] * (dp[u] - static_cast<float>(dot)) * scale;
              if (ds == 0.0f) continue;
              const float* krow =
                  kt2.data() + static_cast<size_t>(b * seq + u) * hd + col0;
              float* dkrow =
                  dk.data() + static_cast<size_t>(b * seq + u) * hd + col0;
              for (int d = 0; d < dh; ++d) {
                dqrow[d] += ds * krow[d];
                dkrow[d] += ds * qrow[d];
              }
            }
          }
        }
      });
      if (RequiresGrad(q)) AccumGrad(q, dq);
      if (RequiresGrad(k)) AccumGrad(k, dk);
      if (RequiresGrad(v)) AccumGrad(v, dv);
    };
  }
  return id;
}

void Tape::Backward(VarId loss) {
  assert(loss >= 0 && loss < static_cast<VarId>(nodes_.size()));
  assert(nodes_[loss].value.numel() == 1);
  AccumGrad(loss, Tensor::Scalar(1.0f));
  for (VarId id = loss; id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.requires_grad || node.grad.empty()) continue;
    if (node.backward) node.backward();
    if (node.grad_sink != nullptr) node.grad_sink->Add(node.grad);
  }
}

}  // namespace rt
