#include "tensor/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "util/obs.h"

namespace rt {
namespace {

/// True while the current thread is inside a ParallelFor item; nested
/// regions run serially instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = false; }
};

/// Records one top-level ParallelFor region (fork + items + join) in the
/// kernel profiler. Nested/serialized inner regions are skipped so a
/// region's wall time is counted once. Destructor-based so the rethrow
/// path is covered too.
struct RegionProfile {
  bool on;
  obs::TimePoint start;
  RegionProfile()
      : on(obs::ProfileEnabled() && !t_in_parallel_region),
        start(on ? obs::Now() : obs::TimePoint{}) {}
  ~RegionProfile() {
    if (!on) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        obs::Now() - start)
                        .count();
    obs::KernelProfiler::Instance().RecordOp(
        obs::KernelProfiler::Op::kParallelFor, 0.0, ns);
  }
};

int ThreadsFromEnv() {
  const char* env = std::getenv("RT_COMPUTE_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

std::mutex g_global_mutex;
std::shared_ptr<ThreadPool> g_global_pool;  // guarded by g_global_mutex

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  RegionProfile profile;
  const bool serial = num_threads_ <= 1 || n == 1 || t_in_parallel_region;
  std::unique_lock<std::mutex> region(region_mutex_, std::defer_lock);
  // A busy pool (another caller mid-region) degrades to inline serial
  // execution rather than blocking — concurrent serve sessions stay
  // independent instead of convoying on the pool.
  if (serial || !region.try_lock()) {
    RegionGuard guard;
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_live_ = true;
    next_.store(0, std::memory_order_relaxed);
    total_ = n;
    pending_.store(n, std::memory_order_relaxed);
    error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  RunItems();  // the caller is a full participant

  // Wait for every item to finish AND for every worker to leave the
  // claim loop — a worker between claims must not observe the next
  // job's state mid-install.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [this] { return pending_.load() == 0 && active_ == 0; });
  job_ = nullptr;
  job_live_ = false;
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // job_live_ keeps a worker that wakes late — after the caller
      // already tore the job down — from touching the next job's state.
      work_cv_.wait(lock, [&] {
        return stop_ || (epoch_ != seen_epoch && job_live_);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      ++active_;
    }
    RunItems();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunItems() {
  RegionGuard guard;
  for (;;) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) return;
    try {
      (*job_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

std::shared_ptr<ThreadPool> ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_shared<ThreadPool>(ThreadsFromEnv());
  }
  return g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  auto pool = std::make_shared<ThreadPool>(num_threads);
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::move(pool);
}

int ThreadPool::GlobalThreads() { return Global()->num_threads(); }

void ParallelFor(int n, const std::function<void(int)>& fn) {
  ThreadPool::Global()->ParallelFor(n, fn);
}

}  // namespace rt
