#ifndef RATATOUILLE_TENSOR_TENSOR_H_
#define RATATOUILLE_TENSOR_TENSOR_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rt {

/// A dense row-major float32 tensor with a dynamic shape.
///
/// This is deliberately a simple value type (shape + flat data); all
/// shapes used by the models are 1-D or 2-D, with batch/time dimensions
/// folded into rows by the callers. Copy is a deep copy.
class Tensor {
 public:
  /// An empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Tensor with explicit contents; data.size() must equal the shape volume.
  Tensor(std::vector<int> shape, std::vector<float> data);

  /// 1-element scalar tensor.
  static Tensor Scalar(float v);

  /// Zero tensor of the given shape.
  static Tensor Zeros(std::vector<int> shape);

  /// Constant-filled tensor.
  static Tensor Full(std::vector<int> shape, float v);

  /// I.i.d. uniform in [-bound, bound].
  static Tensor Uniform(std::vector<int> shape, float bound, Rng* rng);

  /// I.i.d. normal with the given standard deviation.
  static Tensor Normal(std::vector<int> shape, float stddev, Rng* rng);

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }

  /// Size of dimension `d`. Precondition: 0 <= d < ndim().
  int dim(int d) const {
    assert(d >= 0 && d < ndim());
    return shape_[d];
  }

  /// Total number of elements.
  size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Number of rows/cols of a 2-D tensor.
  int rows() const {
    assert(ndim() == 2);
    return shape_[0];
  }
  int cols() const {
    assert(ndim() == 2);
    return shape_[1];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D element access. Precondition: ndim() == 2.
  float& at(int r, int c) {
    assert(ndim() == 2 && r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r) * shape_[1] + c];
  }
  float at(int r, int c) const {
    assert(ndim() == 2 && r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r) * shape_[1] + c];
  }

  /// The value of a 1-element tensor.
  float item() const {
    assert(numel() == 1);
    return data_[0];
  }

  /// Sets every element to v.
  void Fill(float v);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Reinterprets the flat data with a new shape of equal volume.
  Tensor Reshaped(std::vector<int> new_shape) const;

  /// True if shapes are identical.
  bool SameShape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

  /// "[2, 3]" style shape string for error messages.
  std::string ShapeString() const;

  /// Sum / mean / min / max over all elements (0 for empty tensors).
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;

  /// In-place element-wise accumulate: this += other (same shape).
  void Add(const Tensor& other);

  /// In-place scale: this *= s.
  void Scale(float s);

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Volume of a shape (product of dimensions; 1 for the empty shape).
size_t ShapeVolume(const std::vector<int>& shape);

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_TENSOR_H_
