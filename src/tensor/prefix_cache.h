#ifndef RATATOUILLE_TENSOR_PREFIX_CACHE_H_
#define RATATOUILLE_TENSOR_PREFIX_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "tensor/cache_arena.h"

namespace rt {

/// Tuning knobs for PrefixKvCache.
struct PrefixCacheOptions {
  /// Max published prefixes held at once. Each entry pins one arena
  /// slot, so this is the cache's arena-pressure budget; beyond it the
  /// least recently used unreferenced entry is evicted.
  int max_entries = 32;
  /// Prefixes shorter than this are not worth a slot copy.
  int min_tokens = 2;
};

struct PrefixCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int entries = 0;
};

/// Shared-prefix KV cache: a trie keyed on prompt token ids whose
/// terminal nodes hold an arena-slot snapshot of the decode cache after
/// prefilling exactly that prefix. Concurrent requests sharing a prompt
/// prefix restore the snapshot with one memcpy instead of re-encoding
/// it token by token, making admission-to-first-token cost
/// near-constant in prompt length.
///
/// The kernels are deterministic and batch-invariant, so a restored
/// snapshot continues decoding bitwise-identically to a cold prefill —
/// the cache changes cost, never tokens.
///
/// Thread-safe: restores pin their node with a refcount while copying
/// outside the lock, and eviction skips pinned nodes.
class PrefixKvCache {
 public:
  /// `arena` provides snapshot storage; it must outlive the cache and
  /// its slot_floats() must equal the decoder's per-sequence state
  /// size.
  explicit PrefixKvCache(CacheArena* arena, PrefixCacheOptions options = {});
  ~PrefixKvCache();

  PrefixKvCache(const PrefixKvCache&) = delete;
  PrefixKvCache& operator=(const PrefixKvCache&) = delete;

  /// Copies the longest published prefix of tokens[0..n) into `dst`
  /// (an acquired arena slot) and returns its length in tokens; 0
  /// means miss and leaves `dst` untouched.
  int Restore(const int* tokens, int n, float* dst);

  /// Publishes `state` as the decode cache after prefilling exactly
  /// tokens[0..n). Returns false without copying when that prefix is
  /// already published or n is below min_tokens. May evict the least
  /// recently used unreferenced entry to stay within budget.
  bool Publish(const int* tokens, int n, const float* state);

  /// Drops every unreferenced entry (pinned entries stay).
  void Clear();

  PrefixCacheStats stats() const;

 private:
  struct Node;

  void EvictIfNeededLocked();
  void RemoveLocked(Node* node);

  CacheArena* arena_;
  PrefixCacheOptions options_;
  mutable std::mutex mutex_;
  std::unique_ptr<Node> root_;
  uint64_t tick_ = 0;
  int entries_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_PREFIX_CACHE_H_
