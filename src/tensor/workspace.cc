#include "tensor/workspace.h"

#include <algorithm>

namespace rt {
namespace {

/// Round spans up so consecutive Allocs start on 64-byte boundaries
/// (16 floats) — keeps vectorized kernels on aligned-friendly strides.
constexpr size_t kAlignFloats = 16;

size_t AlignUp(size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

float* Workspace::Alloc(size_t n) {
  const size_t need = AlignUp(std::max<size_t>(n, 1));
  while (block_index_ < blocks_.size()) {
    Block& block = blocks_[block_index_];
    if (block.cap - block.used >= need) {
      float* out = block.data.get() + block.used;
      block.used += need;
      in_use_ += need;
      high_water_ = std::max(high_water_, in_use_);
      return out;
    }
    ++block_index_;
  }
  // Grow geometrically so a cold arena converges in a few blocks.
  const size_t cap = std::max(need, std::max<size_t>(capacity(), 1024));
  Block block;
  block.data = std::make_unique<float[]>(cap);
  block.cap = cap;
  block.used = need;
  ++heap_allocs_;
  blocks_.push_back(std::move(block));
  block_index_ = blocks_.size() - 1;
  in_use_ += need;
  high_water_ = std::max(high_water_, in_use_);
  return blocks_.back().data.get();
}

void Workspace::Reset() {
  if (blocks_.size() > 1) {
    // Coalesce: one block sized to the high-water mark serves every
    // span of the next cycle without block-boundary waste.
    const size_t cap = std::max(high_water_, capacity());
    blocks_.clear();
    Block block;
    block.data = std::make_unique<float[]>(cap);
    block.cap = cap;
    ++heap_allocs_;
    blocks_.push_back(std::move(block));
  } else {
    for (Block& block : blocks_) block.used = 0;
  }
  block_index_ = 0;
  in_use_ = 0;
}

size_t Workspace::capacity() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.cap;
  return total;
}

}  // namespace rt
