#include "tensor/tensor.h"

#include <algorithm>
#include <limits>

namespace rt {

size_t ShapeVolume(const std::vector<int>& shape) {
  size_t v = 1;
  for (int d : shape) {
    assert(d >= 0);
    v *= static_cast<size_t>(d);
  }
  return v;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(ShapeVolume(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == ShapeVolume(shape_));
}

Tensor Tensor::Scalar(float v) { return Tensor({1}, {v}); }

Tensor Tensor::Zeros(std::vector<int> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::Uniform(std::vector<int> shape, float bound, Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::Normal(std::vector<int> shape, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian() * stddev);
  }
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::Reshaped(std::vector<int> new_shape) const {
  assert(ShapeVolume(new_shape) == data_.size());
  return Tensor(std::move(new_shape), data_);
}

std::string Tensor::ShapeString() const {
  std::string s = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::Mean() const {
  if (data_.empty()) return 0.0f;
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  if (data_.empty()) return 0.0f;
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  if (data_.empty()) return 0.0f;
  return *std::max_element(data_.begin(), data_.end());
}

void Tensor::Add(const Tensor& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

}  // namespace rt
