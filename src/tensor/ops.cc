#include "tensor/ops.h"

#include <cassert>
#include <cmath>

#include "tensor/kernels.h"

namespace rt::ops {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2);
  const int m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  Tensor c({m, n});
  kernels::Gemm(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2);
  const int m = a.rows(), k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  Tensor c({m, n});
  kernels::GemmTransB(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2);
  const int k = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == k);
  Tensor c({m, n});
  kernels::GemmTransA(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  assert(a.SameShape(b));
  Tensor c = a;
  c.Add(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  assert(a.SameShape(b));
  Tensor c = a;
  for (size_t i = 0; i < c.numel(); ++i) c[i] -= b[i];
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  assert(a.SameShape(b));
  Tensor c = a;
  for (size_t i = 0; i < c.numel(); ++i) c[i] *= b[i];
  return c;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor c = a;
  c.Scale(s);
  return c;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  assert(x.ndim() == 2 && bias.ndim() == 1);
  assert(x.cols() == bias.dim(0));
  Tensor y = x;
  const int m = x.rows(), n = x.cols();
  for (int i = 0; i < m; ++i) {
    float* row = y.data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) row[j] += bias[j];
  }
  return y;
}

Tensor SumRows(const Tensor& x) {
  assert(x.ndim() == 2);
  const int m = x.rows(), n = x.cols();
  Tensor out({n});
  for (int i = 0; i < m; ++i) {
    const float* row = x.data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) out[j] += row[j];
  }
  return out;
}

Tensor Tanh(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  return y;
}

Tensor Sigmoid(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  }
  return y;
}

Tensor Relu(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
  return y;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

Tensor Gelu(const Tensor& x) {
  Tensor y(x.shape());
  // Via the strict kernel helper so the batched forward and the
  // incremental decode path round identically.
  kernels::GeluRow(static_cast<int>(x.numel()), x.data(), y.data());
  return y;
}

Tensor TanhBackward(const Tensor& y, const Tensor& dy) {
  assert(y.SameShape(dy));
  Tensor dx = dy;
  for (size_t i = 0; i < dx.numel(); ++i) dx[i] *= 1.0f - y[i] * y[i];
  return dx;
}

Tensor SigmoidBackward(const Tensor& y, const Tensor& dy) {
  assert(y.SameShape(dy));
  Tensor dx = dy;
  for (size_t i = 0; i < dx.numel(); ++i) dx[i] *= y[i] * (1.0f - y[i]);
  return dx;
}

Tensor ReluBackward(const Tensor& x, const Tensor& dy) {
  assert(x.SameShape(dy));
  Tensor dx = dy;
  for (size_t i = 0; i < dx.numel(); ++i) {
    if (x[i] <= 0.0f) dx[i] = 0.0f;
  }
  return dx;
}

Tensor GeluBackward(const Tensor& x, const Tensor& dy) {
  assert(x.SameShape(dy));
  Tensor dx = dy;
  for (size_t i = 0; i < dx.numel(); ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + 0.044715f * v * v * v);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
    const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx[i] *= grad;
  }
  return dx;
}

Tensor SoftmaxRows(const Tensor& x) {
  assert(x.ndim() == 2);
  const int m = x.rows(), n = x.cols();
  Tensor y({m, n});
  for (int i = 0; i < m; ++i) {
    const float* xi = x.data() + static_cast<size_t>(i) * n;
    float* yi = y.data() + static_cast<size_t>(i) * n;
    float mx = xi[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, xi[j]);
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      yi[j] = std::exp(xi[j] - mx);
      sum += yi[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < n; ++j) yi[j] *= inv;
  }
  return y;
}

Tensor SoftmaxRowsBackward(const Tensor& y, const Tensor& dy) {
  assert(y.SameShape(dy) && y.ndim() == 2);
  const int m = y.rows(), n = y.cols();
  Tensor dx({m, n});
  for (int i = 0; i < m; ++i) {
    const float* yi = y.data() + static_cast<size_t>(i) * n;
    const float* di = dy.data() + static_cast<size_t>(i) * n;
    float* oi = dx.data() + static_cast<size_t>(i) * n;
    double dot = 0.0;
    for (int j = 0; j < n; ++j) dot += yi[j] * di[j];
    for (int j = 0; j < n; ++j) {
      oi[j] = yi[j] * (di[j] - static_cast<float>(dot));
    }
  }
  return dx;
}

Tensor LogSoftmaxRows(const Tensor& x) {
  assert(x.ndim() == 2);
  const int m = x.rows(), n = x.cols();
  Tensor y({m, n});
  for (int i = 0; i < m; ++i) {
    const float* xi = x.data() + static_cast<size_t>(i) * n;
    float* yi = y.data() + static_cast<size_t>(i) * n;
    float mx = xi[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, xi[j]);
    double sum = 0.0;
    for (int j = 0; j < n; ++j) sum += std::exp(xi[j] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int j = 0; j < n; ++j) yi[j] = xi[j] - lse;
  }
  return y;
}

Tensor LayerNormRows(const Tensor& x, const Tensor& gain, const Tensor& bias,
                     float eps, LayerNormCache* cache) {
  assert(x.ndim() == 2 && gain.ndim() == 1 && bias.ndim() == 1);
  const int m = x.rows(), n = x.cols();
  assert(gain.dim(0) == n && bias.dim(0) == n);
  Tensor y({m, n});
  if (cache != nullptr) {
    cache->mean.resize(m);
    cache->rstd.resize(m);
  }
  // Row work delegates to the strict kernel helper so the batched
  // forward and the incremental decode path round identically.
  for (int i = 0; i < m; ++i) {
    const float* xi = x.data() + static_cast<size_t>(i) * n;
    float* yi = y.data() + static_cast<size_t>(i) * n;
    kernels::LayerNormRow(n, xi, gain.data(), bias.data(), eps, yi,
                          cache != nullptr ? &cache->mean[i] : nullptr,
                          cache != nullptr ? &cache->rstd[i] : nullptr);
  }
  return y;
}

Tensor LayerNormRowsBackward(const Tensor& x, const Tensor& gain,
                             const LayerNormCache& cache, const Tensor& dy,
                             Tensor* dgain, Tensor* dbias) {
  assert(x.SameShape(dy) && x.ndim() == 2);
  const int m = x.rows(), n = x.cols();
  assert(dgain->ndim() == 1 && dgain->dim(0) == n);
  assert(dbias->ndim() == 1 && dbias->dim(0) == n);
  Tensor dx({m, n});
  for (int i = 0; i < m; ++i) {
    const float* xi = x.data() + static_cast<size_t>(i) * n;
    const float* di = dy.data() + static_cast<size_t>(i) * n;
    float* oi = dx.data() + static_cast<size_t>(i) * n;
    const float mean = cache.mean[i];
    const float rstd = cache.rstd[i];
    // xhat_j = (x_j - mean) * rstd; dxhat_j = dy_j * gain_j.
    double sum_dxhat = 0.0;
    double sum_dxhat_xhat = 0.0;
    for (int j = 0; j < n; ++j) {
      const float xhat = (xi[j] - mean) * rstd;
      const float dxhat = di[j] * gain[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
      (*dgain)[j] += di[j] * xhat;
      (*dbias)[j] += di[j];
    }
    for (int j = 0; j < n; ++j) {
      const float xhat = (xi[j] - mean) * rstd;
      const float dxhat = di[j] * gain[j];
      oi[j] = rstd * (dxhat -
                      static_cast<float>(sum_dxhat) / n -
                      xhat * static_cast<float>(sum_dxhat_xhat) / n);
    }
  }
  return dx;
}

Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& ids) {
  assert(table.ndim() == 2);
  const int d = table.cols();
  Tensor out({static_cast<int>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    assert(ids[i] >= 0 && ids[i] < table.rows());
    const float* src = table.data() + static_cast<size_t>(ids[i]) * d;
    float* dst = out.data() + i * d;
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

void EmbeddingScatterAdd(const std::vector<int>& ids, const Tensor& dy,
                         Tensor* dtable) {
  assert(dy.ndim() == 2 && dtable->ndim() == 2);
  assert(dy.rows() == static_cast<int>(ids.size()));
  assert(dy.cols() == dtable->cols());
  const int d = dy.cols();
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = dy.data() + i * d;
    float* dst = dtable->data() + static_cast<size_t>(ids[i]) * d;
    for (int j = 0; j < d; ++j) dst[j] += src[j];
  }
}

Tensor SliceCols(const Tensor& x, int c0, int c1) {
  assert(x.ndim() == 2 && 0 <= c0 && c0 < c1 && c1 <= x.cols());
  const int m = x.rows(), n = x.cols(), w = c1 - c0;
  Tensor y({m, w});
  for (int i = 0; i < m; ++i) {
    const float* src = x.data() + static_cast<size_t>(i) * n + c0;
    float* dst = y.data() + static_cast<size_t>(i) * w;
    for (int j = 0; j < w; ++j) dst[j] = src[j];
  }
  return y;
}

void SliceColsScatterAdd(const Tensor& dy, int c0, Tensor* dx) {
  assert(dy.ndim() == 2 && dx->ndim() == 2);
  assert(dy.rows() == dx->rows());
  const int m = dy.rows(), w = dy.cols(), n = dx->cols();
  assert(c0 >= 0 && c0 + w <= n);
  for (int i = 0; i < m; ++i) {
    const float* src = dy.data() + static_cast<size_t>(i) * w;
    float* dst = dx->data() + static_cast<size_t>(i) * n + c0;
    for (int j = 0; j < w; ++j) dst[j] += src[j];
  }
}

Tensor ConcatCols(const std::vector<const Tensor*>& xs) {
  assert(!xs.empty());
  const int m = xs[0]->rows();
  int total = 0;
  for (const Tensor* x : xs) {
    assert(x->ndim() == 2 && x->rows() == m);
    total += x->cols();
  }
  Tensor y({m, total});
  int offset = 0;
  for (const Tensor* x : xs) {
    const int w = x->cols();
    for (int i = 0; i < m; ++i) {
      const float* src = x->data() + static_cast<size_t>(i) * w;
      float* dst = y.data() + static_cast<size_t>(i) * total + offset;
      for (int j = 0; j < w; ++j) dst[j] = src[j];
    }
    offset += w;
  }
  return y;
}

Tensor Transpose(const Tensor& x) {
  assert(x.ndim() == 2);
  const int m = x.rows(), n = x.cols();
  Tensor y({n, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) y.at(j, i) = x.at(i, j);
  }
  return y;
}

float CrossEntropyFromLogits(const Tensor& logits,
                             const std::vector<int>& targets,
                             int ignore_index, Tensor* probs) {
  assert(logits.ndim() == 2);
  assert(logits.rows() == static_cast<int>(targets.size()));
  Tensor p = SoftmaxRows(logits);
  const int m = logits.rows(), v = logits.cols();
  double loss = 0.0;
  int valid = 0;
  for (int i = 0; i < m; ++i) {
    const int t = targets[i];
    if (t == ignore_index) continue;
    assert(t >= 0 && t < v);
    const float pt = p.data()[static_cast<size_t>(i) * v + t];
    loss -= std::log(std::max(pt, 1e-12f));
    ++valid;
  }
  if (probs != nullptr) *probs = std::move(p);
  if (valid == 0) return 0.0f;
  return static_cast<float>(loss / valid);
}

Tensor CrossEntropyBackward(const Tensor& probs,
                            const std::vector<int>& targets,
                            int ignore_index, float dloss) {
  assert(probs.ndim() == 2);
  const int m = probs.rows(), v = probs.cols();
  assert(m == static_cast<int>(targets.size()));
  int valid = 0;
  for (int t : targets) {
    if (t != ignore_index) ++valid;
  }
  Tensor dx({m, v});
  if (valid == 0) return dx;
  const float scale = dloss / static_cast<float>(valid);
  for (int i = 0; i < m; ++i) {
    const int t = targets[i];
    float* out = dx.data() + static_cast<size_t>(i) * v;
    if (t == ignore_index) continue;
    const float* pi = probs.data() + static_cast<size_t>(i) * v;
    for (int j = 0; j < v; ++j) out[j] = pi[j] * scale;
    out[t] -= scale;
  }
  return dx;
}

}  // namespace rt::ops
