#ifndef RATATOUILLE_TENSOR_WORKSPACE_H_
#define RATATOUILLE_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rt {

/// Bump-pointer arena for hot-loop scratch buffers.
///
/// Decode loops (KV-cache step, LSTM step, beam search) borrow their
/// per-token intermediates from a Workspace instead of heap-allocating
/// fresh Tensors: Alloc() hands out float spans, Reset() makes the whole
/// capacity reusable for the next token. After a warmup token has sized
/// the arena, the steady state performs zero heap allocations — the
/// heap_allocs() counter lets tests assert exactly that.
///
/// Alloc never moves previously returned spans within one Reset cycle
/// (growth appends a new block rather than reallocating), so a hot loop
/// can hold several live scratch buffers at once. Reset() coalesces a
/// fragmented arena into one block sized to the observed high-water
/// mark, so fragmentation-driven growth converges after one cycle.
///
/// Not thread-safe; each decode session owns its workspace.
class Workspace {
 public:
  Workspace() = default;

  /// Copying a workspace yields a fresh, empty arena: scratch contents
  /// are transient, and this keeps owners (e.g. KV caches duplicated by
  /// beam search) cheaply copyable.
  Workspace(const Workspace&) {}
  Workspace& operator=(const Workspace&) {
    blocks_.clear();
    block_index_ = 0;
    in_use_ = 0;
    high_water_ = 0;
    heap_allocs_ = 0;
    return *this;
  }
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Returns an uninitialized span of n floats, valid until Reset().
  float* Alloc(size_t n);

  /// Makes the full capacity available again. Spans from before the
  /// call are invalidated. Coalesces multi-block arenas into one block.
  void Reset();

  /// Floats handed out since the last Reset().
  size_t in_use() const { return in_use_; }

  /// Largest in_use() ever observed (floats).
  size_t high_water() const { return high_water_; }

  /// Number of heap allocations the arena has performed. Flat across
  /// tokens once warm — the zero-allocs-per-token assertion.
  int64_t heap_allocs() const { return heap_allocs_; }

  /// Total floats of capacity across all blocks.
  size_t capacity() const;

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    size_t cap = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t block_index_ = 0;  // current bump block
  size_t in_use_ = 0;
  size_t high_water_ = 0;
  int64_t heap_allocs_ = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_WORKSPACE_H_
