#include "tensor/prefix_cache.h"

#include <cstring>
#include <vector>

namespace rt {

struct PrefixKvCache::Node {
  Node* parent = nullptr;
  int token = -1;
  int depth = 0;
  std::map<int, std::unique_ptr<Node>> children;
  float* slot = nullptr;  // non-null once published
  int refcount = 0;       // restores copying this slot right now
  uint64_t last_used = 0;
};

PrefixKvCache::PrefixKvCache(CacheArena* arena, PrefixCacheOptions options)
    : arena_(arena), options_(options), root_(std::make_unique<Node>()) {
  if (options_.max_entries < 1) options_.max_entries = 1;
  if (options_.min_tokens < 1) options_.min_tokens = 1;
}

PrefixKvCache::~PrefixKvCache() { Clear(); }

int PrefixKvCache::Restore(const int* tokens, int n, float* dst) {
  Node* best = nullptr;
  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Node* node = root_.get();
    for (int i = 0; i < n; ++i) {
      auto it = node->children.find(tokens[i]);
      if (it == node->children.end()) break;
      node = it->second.get();
      if (node->slot != nullptr) best = node;
    }
    if (best == nullptr) {
      ++misses_;
      return 0;
    }
    ++hits_;
    best->last_used = ++tick_;
    ++best->refcount;  // pin across the unlocked copy
    depth = best->depth;
  }
  std::memcpy(dst, best->slot, arena_->slot_floats() * sizeof(float));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --best->refcount;
  }
  // Not best->depth: dropping the refcount released the pin, so the
  // node may already be evicted and freed by now.
  return depth;
}

bool PrefixKvCache::Publish(const int* tokens, int n, const float* state) {
  if (n < options_.min_tokens) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Node* node = root_.get();
    bool exists = true;
    for (int i = 0; i < n && exists; ++i) {
      auto it = node->children.find(tokens[i]);
      if (it == node->children.end()) {
        exists = false;
      } else {
        node = it->second.get();
      }
    }
    if (exists && node->slot != nullptr) {
      node->last_used = ++tick_;
      return false;
    }
  }
  // Copy outside the lock: the snapshot is invisible until inserted.
  float* slot = arena_->Acquire();
  std::memcpy(slot, state, arena_->slot_floats() * sizeof(float));
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = root_.get();
  for (int i = 0; i < n; ++i) {
    auto& child = node->children[tokens[i]];
    if (!child) {
      child = std::make_unique<Node>();
      child->parent = node;
      child->token = tokens[i];
      child->depth = node->depth + 1;
    }
    node = child.get();
  }
  if (node->slot != nullptr) {
    // Raced with another publisher of the same prefix; keep theirs.
    arena_->Release(slot);
    node->last_used = ++tick_;
    return false;
  }
  node->slot = slot;
  node->last_used = ++tick_;
  ++entries_;
  EvictIfNeededLocked();
  return true;
}

void PrefixKvCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Node*> stack = {root_.get()};
  std::vector<Node*> published;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (auto& child : node->children) stack.push_back(child.second.get());
    if (node->slot != nullptr && node->refcount == 0) {
      published.push_back(node);
    }
  }
  // Removing a payload never erases another published node: pruning
  // only deletes payload-free childless chains.
  for (Node* node : published) RemoveLocked(node);
}

PrefixCacheStats PrefixKvCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PrefixCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_;
  return s;
}

void PrefixKvCache::EvictIfNeededLocked() {
  while (entries_ > options_.max_entries) {
    Node* victim = nullptr;
    std::vector<Node*> stack = {root_.get()};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      for (auto& child : node->children) stack.push_back(child.second.get());
      if (node->slot != nullptr && node->refcount == 0 &&
          (victim == nullptr || node->last_used < victim->last_used)) {
        victim = node;
      }
    }
    if (victim == nullptr) return;  // every entry is pinned right now
    RemoveLocked(victim);
    ++evictions_;
  }
}

void PrefixKvCache::RemoveLocked(Node* node) {
  arena_->Release(node->slot);
  node->slot = nullptr;
  --entries_;
  // Prune the now payload-free chain upward; stops at any node that
  // still anchors a payload, children, or an in-flight restore.
  while (node != root_.get() && node->slot == nullptr &&
         node->children.empty() && node->refcount == 0) {
    Node* parent = node->parent;
    parent->children.erase(node->token);
    node = parent;
  }
}

}  // namespace rt
