// Compiled without -ffast-math (see src/tensor/CMakeLists.txt):
// -ffinite-math-only would fold the std::isfinite rejection checks to
// constants, and scale selection must round identically everywhere.

#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

namespace rt::quant {

bool ChannelScale(const float* x, int count, std::ptrdiff_t stride,
                  float* scale_out) {
  float absmax = 0.0f;
  for (int i = 0; i < count; ++i) {
    const float v = x[static_cast<std::ptrdiff_t>(i) * stride];
    if (!std::isfinite(v)) return false;
    absmax = std::max(absmax, std::fabs(v));
  }
  *scale_out = absmax > 0.0f ? absmax / static_cast<float>(kQMax) : 0.0f;
  return true;
}

std::int8_t QuantizeValue(float v, float scale) {
  if (scale == 0.0f) return 0;
  const long r = std::lrintf(v / scale);
  const long clamped =
      std::clamp(r, static_cast<long>(-kQMax), static_cast<long>(kQMax));
  return static_cast<std::int8_t>(clamped);
}

bool QuantizePerColumn(const float* w, int rows, int cols, std::int8_t* q,
                       float* scales) {
  for (int c = 0; c < cols; ++c) {
    if (!ChannelScale(w + c, rows, cols, &scales[c])) return false;
  }
  for (int r = 0; r < rows; ++r) {
    const float* src = w + static_cast<std::size_t>(r) * cols;
    std::int8_t* dst = q + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = QuantizeValue(src[c], scales[c]);
  }
  return true;
}

void DequantizePerColumn(const std::int8_t* q, int rows, int cols,
                         const float* scales, float* w) {
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* src = q + static_cast<std::size_t>(r) * cols;
    float* dst = w + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = DequantizeValue(src[c], scales[c]);
  }
}

bool QuantizePerRow(const float* w, int rows, int cols, std::int8_t* q,
                    float* scales) {
  for (int r = 0; r < rows; ++r) {
    const float* src = w + static_cast<std::size_t>(r) * cols;
    if (!ChannelScale(src, cols, 1, &scales[r])) return false;
    std::int8_t* dst = q + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = QuantizeValue(src[c], scales[r]);
  }
  return true;
}

void DequantizePerRow(const std::int8_t* q, int rows, int cols,
                      const float* scales, float* w) {
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* src = q + static_cast<std::size_t>(r) * cols;
    float* dst = w + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = DequantizeValue(src[c], scales[r]);
  }
}

}  // namespace rt::quant
