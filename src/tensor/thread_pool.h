#ifndef RATATOUILLE_TENSOR_THREAD_POOL_H_
#define RATATOUILLE_TENSOR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rt {

/// Fixed-size intra-op worker pool with a blocking ParallelFor.
///
/// One pool is shared process-wide (Global()) so the GEMM row
/// partitioner, the attention head loops and any other intra-op
/// parallelism draw from the same set of threads and serve-layer
/// sessions cannot oversubscribe the machine. The pool size is set once
/// at startup from --compute-threads (or the RT_COMPUTE_THREADS
/// environment variable) and defaults to 1, which makes every
/// ParallelFor run inline on the caller.
///
/// Work items are indexed, and an item's output must depend only on its
/// index — the pool distributes indices dynamically, so the partition
/// varies run to run but the computed values do not. Kernels built on
/// ParallelFor are therefore bitwise deterministic in the result for
/// any pool size.
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the caller of ParallelFor is
  /// always the extra participant). num_threads < 1 is clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Outstanding ParallelFor calls must have
  /// returned; the destructor only has to wake idle workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n). The caller participates; the
  /// call returns after every item has finished. The first exception
  /// thrown by any item is rethrown in the caller once all claimed
  /// items have settled (remaining unclaimed items are abandoned).
  ///
  /// Nested calls (fn itself calling ParallelFor, on any pool) run the
  /// inner loop serially inline, so kernels can parallelize at their
  /// own level without deadlocking when composed.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// The process-wide pool. First use creates it with the size from
  /// RT_COMPUTE_THREADS (default 1).
  static std::shared_ptr<ThreadPool> Global();

  /// Replaces the process-wide pool with one of `num_threads`. In-flight
  /// ParallelFor calls on the old pool finish on the old threads (the
  /// pool is shared_ptr-held); new calls see the new size. Intended for
  /// startup flag wiring and tests, not for per-request tuning.
  static void SetGlobalThreads(int num_threads);

  /// Size of the current process-wide pool.
  static int GlobalThreads();

 private:
  void WorkerLoop();
  /// Claims and runs items of the current job until none remain.
  void RunItems();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for pending_ == 0
  /// Serializes parallel regions: concurrent callers (e.g. two serve
  /// sessions decoding at once) fall back to inline serial execution
  /// instead of queueing behind each other.
  std::mutex region_mutex_;

  const std::function<void(int)>* job_ = nullptr;  // valid for one epoch
  bool job_live_ = false;  // set on install, cleared on teardown
  std::atomic<int> next_{0};
  int total_ = 0;
  std::atomic<int> pending_{0};
  int active_ = 0;  // workers currently inside the claim loop
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// Convenience wrapper over the global pool: runs fn(i) for i in
/// [0, n), inline when the pool has a single thread.
void ParallelFor(int n, const std::function<void(int)>& fn);

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_THREAD_POOL_H_
