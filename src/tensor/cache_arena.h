#ifndef RATATOUILLE_TENSOR_CACHE_ARENA_H_
#define RATATOUILLE_TENSOR_CACHE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rt {

/// Pooled storage for per-sequence decode caches (KV planes, recurrent
/// hidden state). A slot is a fixed-size float span carved out of
/// larger blocks; Acquire() pops the free list (growing by one block
/// when empty) and zero-fills the slot, Release() recycles it.
///
/// Continuous-batching schedulers admit and retire sequences at token
/// granularity, so cache storage churns constantly. The arena makes
/// that churn allocation-free in the steady state: once the pool has
/// grown to the peak concurrent batch, admissions reuse released slots
/// and heap_allocs() stays flat — the same zero-allocs-per-token
/// discipline Workspace gives the step scratch.
///
/// Thread-safe: sequences are released from whichever thread retires
/// them while the scheduler thread acquires new ones.
class CacheArena {
 public:
  /// `slot_floats` is the per-sequence cache size; `slots_per_block`
  /// tunes how many slots one heap allocation provides.
  explicit CacheArena(size_t slot_floats, int slots_per_block = 4);

  CacheArena(const CacheArena&) = delete;
  CacheArena& operator=(const CacheArena&) = delete;

  /// Returns a zero-filled span of slot_floats() floats, valid until
  /// Release(). Never fails (grows the pool as needed).
  float* Acquire();

  /// Returns a slot obtained from Acquire() to the free list. Passing
  /// nullptr is a no-op.
  void Release(float* slot);

  size_t slot_floats() const { return slot_floats_; }
  int slots_in_use() const;
  /// Total slots ever carved (in use + free).
  int capacity() const;
  /// Heap allocations performed so far; flat once the pool covers the
  /// peak batch size.
  int64_t heap_allocs() const;

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    int slots = 0;
  };

  size_t slot_floats_;
  int slots_per_block_;
  mutable std::mutex mutex_;
  std::vector<Block> blocks_;
  std::vector<float*> free_;
  int in_use_ = 0;
  int64_t heap_allocs_ = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_TENSOR_CACHE_ARENA_H_
