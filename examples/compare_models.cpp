// Side-by-side comparison of the paper's model families on the same
// ingredient prompt: train char-LSTM, word-LSTM and DistilGPT2 on one
// corpus and print each model's recipe plus quick quality metrics —
// a miniature of the Table I experiment for interactive exploration.
//
//   ./build/examples/compare_models

#include <cstdio>
#include <string>
#include <vector>

#include "core/ratatouille.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

rt::PipelineOptions BaseOptions(rt::ModelKind kind) {
  rt::PipelineOptions options;
  options.corpus.num_recipes = 250;
  options.corpus.seed = 11;
  options.model = kind;
  options.bpe_vocab_budget = 600;
  options.trainer.epochs = 4;
  if (kind == rt::ModelKind::kDistilGpt2) {
    // GPT models train one recipe per window (see DESIGN.md).
    options.trainer.seq_len = 176;
    options.trainer.batch_size = 4;
    options.trainer.epochs = 6;
  } else {
    options.trainer.batch_size = 8;
    options.trainer.seq_len = 48;
  }
  return options;
}

}  // namespace

int main() {
  const std::vector<std::string> prompt{"chicken", "rice", "cumin"};
  const std::vector<rt::ModelKind> kinds{
      rt::ModelKind::kCharLstm, rt::ModelKind::kWordLstm,
      rt::ModelKind::kDistilGpt2};

  rt::TextTable table(
      {"Model", "Params", "Val loss", "Gen seconds", "Title"});

  for (rt::ModelKind kind : kinds) {
    std::printf("=== %s ===\n", rt::ModelKindName(kind));
    auto pipeline = rt::Pipeline::Create(BaseOptions(kind));
    if (!pipeline.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   pipeline.status().ToString().c_str());
      return 1;
    }
    rt::Pipeline& p = **pipeline;
    auto train = p.Train();
    if (!train.ok()) {
      std::fprintf(stderr, "train failed: %s\n",
                   train.status().ToString().c_str());
      return 1;
    }
    rt::GenerationOptions gen;
    gen.max_new_tokens = kind == rt::ModelKind::kCharLstm ? 600 : 150;
    gen.sampling.temperature = 0.8f;
    gen.sampling.top_k = 10;
    gen.seed = 21;
    auto out = p.GenerateFromIngredients(prompt, gen);
    if (!out.ok()) {
      std::fprintf(stderr, "generate failed\n");
      return 1;
    }
    std::printf("train loss %.3f -> generated %d tokens in %.2fs\n",
                train->final_train_loss, out->tokens_generated,
                out->seconds);
    std::printf("title: %s\n", out->recipe.title.c_str());
    for (const auto& step : out->recipe.instructions) {
      std::printf("  - %s\n", step.c_str());
    }
    std::printf("\n");
    table.AddRow({p.model()->name(),
                  std::to_string(p.model()->NumParams()),
                  rt::FormatDouble(p.ValidationLoss(), 3),
                  rt::FormatDouble(out->seconds, 2),
                  out->recipe.title.empty()
                      ? "(unparsed)"
                      : out->recipe.title.substr(0, 40)});
  }

  std::printf("%s", table.Render().c_str());
  return 0;
}
