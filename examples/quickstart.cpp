// Quickstart: train a small GPT-2 on the synthetic RecipeDB corpus and
// generate a novel recipe from a user ingredient list — the whole
// Ratatouille loop in ~50 lines.
//
//   ./build/examples/quickstart [ingredient ...]
//
// Defaults to "tomato onion garlic" when no ingredients are given.

#include <cstdio>
#include <string>
#include <vector>

#include "core/ratatouille.h"

int main(int argc, char** argv) {
  std::vector<std::string> ingredients;
  for (int i = 1; i < argc; ++i) ingredients.push_back(argv[i]);
  if (ingredients.empty()) ingredients = {"tomato", "onion", "garlic"};

  rt::PipelineOptions options;
  options.corpus.num_recipes = 300;
  options.model = rt::ModelKind::kGpt2Medium;
  options.bpe_vocab_budget = 600;
  options.trainer.epochs = 4;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 176;  // one recipe per training window
  options.trainer.lr = 3e-3f;

  std::printf("Building corpus + tokenizer + model...\n");
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  rt::Pipeline& p = **pipeline;
  std::printf("corpus: %d recipes kept of %d; vocab: %d tokens; "
              "model: %s (%zu params)\n",
              p.preprocess_stats().output_count,
              p.preprocess_stats().input_count, p.tokenizer().vocab_size(),
              p.model()->name().c_str(), p.model()->NumParams());

  std::printf("Training...\n");
  auto result = p.Train();
  if (!result.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %lld steps in %.1fs (%.0f tokens/s), "
              "final loss %.3f\n",
              result->steps, result->seconds, result->tokens_per_second,
              result->final_train_loss);

  rt::GenerationOptions gen;
  gen.max_new_tokens = 160;
  gen.sampling.temperature = 0.8f;
  gen.sampling.top_k = 12;
  gen.seed = 42;
  auto recipe = p.GenerateFromIngredients(ingredients, gen);
  if (!recipe.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 recipe.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== Generated recipe (%.2fs, %d tokens) ===\n",
              recipe->seconds, recipe->tokens_generated);
  std::printf("Title: %s\n\nIngredients:\n",
              recipe->recipe.title.c_str());
  for (const auto& line : recipe->recipe.ingredients) {
    std::printf("  - %s\n", line.Render().c_str());
  }
  std::printf("\nInstructions:\n");
  int step = 1;
  for (const auto& instr : recipe->recipe.instructions) {
    std::printf("  %d. %s\n", step++, instr.c_str());
  }
  return 0;
}
