// Dataset explorer: inspect the synthetic RecipeDB corpus the way the
// paper's Sec. III describes the real one — raw vs preprocessed records
// (Figs. 1-2), the size distribution with its 2-sigma band, and the
// cuisine/process catalog counts.
//
//   ./build/examples/dataset_explorer [num_recipes]

#include <cstdio>
#include <cstdlib>

#include "core/ratatouille.h"
#include "data/catalog.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2000;

  rt::GeneratorOptions gen;
  gen.num_recipes = n;
  gen.seed = 2022;
  rt::RecipeDbGenerator generator(gen);
  auto corpus = generator.Generate();

  std::printf("Catalog: %d continents / %d regions / %d countries, "
              "%zu ingredients, %zu processes\n",
              rt::Catalog::NumContinents(), rt::Catalog::NumRegions(),
              rt::Catalog::NumCountries(),
              rt::Catalog::Ingredients().size(),
              rt::Catalog::Processes().size());
  std::printf("(RecipeDB at full scale: 6 / 26 / 74, 20,262 ingredients, "
              "268 processes)\n\n");

  std::printf("--- One record BEFORE preprocessing (raw form, Fig. 1) ---\n");
  std::printf("%s\n", corpus[0].ToRawString().c_str());

  rt::PreprocessStats stats;
  auto clean = rt::Preprocessor().Run(corpus, &stats);

  std::printf("--- Same corpus AFTER preprocessing (tagged form, Fig. 2) "
              "---\n%s\n\n",
              clean[0].ToTaggedString().c_str());

  std::printf("Preprocessing report:\n");
  std::printf("  input records            %d\n", stats.input_count);
  std::printf("  removed incomplete       %d\n", stats.removed_incomplete);
  std::printf("  removed duplicates       %d\n", stats.removed_duplicates);
  std::printf("  merged short (-3 sigma)  %d\n", stats.merged_short);
  std::printf("  removed outside 2 sigma  %d\n", stats.removed_band);
  std::printf("  clamped to 2000 chars    %d\n", stats.clamped);
  std::printf("  output records           %d\n\n", stats.output_count);

  std::printf("Length stats before: mean %.0f sd %.0f [%zu, %zu], "
              "2-sigma coverage %.2f%%\n",
              stats.before.mean, stats.before.stddev, stats.before.min_len,
              stats.before.max_len, 100.0 * stats.coverage_2sigma_before);
  std::printf("Length stats after : mean %.0f sd %.0f [%zu, %zu]\n\n",
              stats.after.mean, stats.after.stddev, stats.after.min_len,
              stats.after.max_len);

  // ASCII size-distribution histogram (the Fig. 3 inset).
  std::vector<size_t> lengths;
  for (const auto& r : corpus) lengths.push_back(r.TaggedLength());
  auto hist = rt::BuildLengthHistogram(lengths, 150);
  size_t peak = 1;
  for (size_t c : hist.counts) peak = std::max(peak, c);
  std::printf("Recipe size distribution (chars, bin=150):\n");
  for (size_t i = 0; i < hist.counts.size(); ++i) {
    const int bar = static_cast<int>(60.0 * hist.counts[i] / peak);
    std::printf("%5zu-%5zu | %s %zu\n", i * hist.bin_width,
                (i + 1) * hist.bin_width - 1,
                std::string(bar, '#').c_str(), hist.counts[i]);
  }
  return 0;
}
