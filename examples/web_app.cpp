// The paper's web application (Sec. VI, Figs. 4-5): a decoupled two-tier
// microservice stack. The backend wraps a trained model behind
// POST /v1/generate; the frontend serves the page and reverse-proxies
// API calls, exactly mirroring the Flask + ReactJS split.
//
//   ./build/examples/web_app [backend_port frontend_port]
//       [--enable-deprecated-routes] [--no-prefix-cache]
//
// Then: curl -s localhost:<frontend>/v1/generate \
//         -d '{"ingredients":["tomato","basil"]}'
// Or stream tokens as they decode:
//       curl -sN localhost:<frontend>/v1/generate \
//         -d '{"ingredients":["tomato","basil"],"stream":true}'
// Pass 0 0 (default) for ephemeral ports. The demo issues a self-request
// and exits; give explicit ports to keep it serving until Ctrl-C.
//
// --enable-deprecated-routes restores the pre-/v1 aliases (/healthz,
// /metrics, /api/generate) with their Deprecation header; API v2 drops
// them by default. --no-prefix-cache disables the shared-prefix KV
// cache (useful for A/B-ing TTFT or verifying bitwise parity).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/ratatouille.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  int backend_port = 0;
  int frontend_port = 0;
  bool enable_deprecated_routes = false;
  bool enable_prefix_cache = true;
  bool enable_fault_admin = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enable-deprecated-routes") == 0) {
      enable_deprecated_routes = true;
    } else if (std::strcmp(argv[i], "--no-prefix-cache") == 0) {
      enable_prefix_cache = false;
    } else if (std::strcmp(argv[i], "--enable-fault-admin") == 0) {
      // Exposes POST /v1/admin/fault so faults can be armed remotely —
      // a demo/testing aid, never for a real deployment.
      enable_fault_admin = true;
    } else if (positional == 0) {
      backend_port = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      frontend_port = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const bool serve_forever = backend_port != 0 || frontend_port != 0;

  std::printf("Training the backing model (word-LSTM, small)...\n");
  rt::PipelineOptions options;
  options.corpus.num_recipes = 250;
  options.model = rt::ModelKind::kWordLstm;
  options.trainer.epochs = 3;
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok() || !(*pipeline)->Train().ok()) {
    std::fprintf(stderr, "pipeline setup failed\n");
    return 1;
  }
  rt::Pipeline& p = **pipeline;

  // Backend tier: model inference behind REST. Concurrent requests
  // share one batch scheduler over the trained model, which coalesces
  // their decode steps into batched forwards (up to 4 rows per step).
  rt::BackendOptions backend_options;
  backend_options.max_batch = 4;
  backend_options.models = {"word-lstm"};
  backend_options.enable_deprecated_routes = enable_deprecated_routes;
  backend_options.enable_fault_admin = enable_fault_admin;
  rt::serve::BatchSchedulerOptions sched_options;
  sched_options.max_batch = backend_options.max_batch;
  sched_options.enable_prefix_cache = enable_prefix_cache;
  rt::serve::BatchScheduler scheduler(p.model(), sched_options);
  rt::InstallBatchMetrics(&scheduler, &backend_options);
  rt::BackendService backend(
      rt::MakeBatchedPipelineSessionFactory(&p, &scheduler),
      backend_options);
  if (auto s = backend.Start(backend_port); !s.ok()) {
    std::fprintf(stderr, "backend: %s\n", s.ToString().c_str());
    return 1;
  }
  // Frontend tier: static page + reverse proxy. Fully decoupled: it only
  // knows the backend's port, never its code.
  rt::FrontendService frontend(backend.port());
  if (auto s = frontend.Start(frontend_port); !s.ok()) {
    std::fprintf(stderr, "frontend: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("backend  : http://127.0.0.1:%d  (POST /v1/generate)\n",
              backend.port());
  std::printf("frontend : http://127.0.0.1:%d  (GET /)\n", frontend.port());
  std::printf("trace    : http://127.0.0.1:%d/v1/trace  "
              "(Chrome trace JSON, load in Perfetto)\n",
              backend.port());
  std::printf("metrics  : http://127.0.0.1:%d/v1/metrics"
              "[?format=prometheus]\n",
              backend.port());
  std::printf("workers=%d sessions=%d prefix_cache=%s\n",
              backend.server().num_workers(), backend.model_sessions(),
              enable_prefix_cache ? "on" : "off");
  std::printf("stream   : curl -sN http://127.0.0.1:%d/v1/generate "
              "-d '{\"ingredients\":[\"tomato\"],\"stream\":true}'\n",
              frontend.port());

  if (serve_forever) {
    std::signal(SIGINT, OnSignal);
    std::printf("Serving until Ctrl-C...\n");
    while (!g_stop) {
      // Idle loop; the servers run on their own threads.
      struct timespec ts{0, 100'000'000};
      nanosleep(&ts, nullptr);
    }
  } else {
    // Demo round trip through the full stack.
    auto resp = rt::HttpPost(frontend.port(), "/v1/generate",
                             R"({"ingredients":["tomato","basil"],)"
                             R"("max_tokens":120,"seed":7})");
    if (resp.ok()) {
      std::printf("\nRound trip through frontend proxy (status %d):\n%s\n",
                  resp->status, resp->body.c_str());
    } else {
      std::fprintf(stderr, "round trip failed: %s\n",
                   resp.status().ToString().c_str());
    }
  }

  frontend.Stop();
  backend.Stop();
  return 0;
}
