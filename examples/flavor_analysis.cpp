// Flavor & nutrition analysis: the RecipeDB linkages the paper's Sec. III
// describes (FlavorDB molecules + USDA nutrition). Trains a model,
// generates a recipe from the user's ingredients, and reports the
// generated recipe's estimated nutrition and food-pairing profile —
// turning the web demo's output into the kind of scientific exploration
// RecipeDB is built for.
//
//   ./build/examples/flavor_analysis [ingredient ...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/ratatouille.h"
#include "data/flavor.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  std::vector<std::string> ingredients;
  for (int i = 1; i < argc; ++i) ingredients.push_back(argv[i]);
  if (ingredients.empty()) ingredients = {"chicken", "rice", "turmeric"};

  // Prompt-side analysis needs no model at all.
  std::printf("PROMPT INGREDIENT ANALYSIS\n");
  for (const auto& name : ingredients) {
    const auto& compounds = rt::FlavorCompoundsFor(name);
    const auto& nutrition = rt::NutritionFor(name);
    std::printf("  %-14s %5.0f kcal/100g, compounds: %s\n", name.c_str(),
                nutrition.calories_kcal,
                compounds.empty() ? "(unknown)"
                                  : rt::Join(compounds, ", ").c_str());
  }
  std::printf("  pairwise pairing scores:\n");
  for (size_t i = 0; i < ingredients.size(); ++i) {
    for (size_t j = i + 1; j < ingredients.size(); ++j) {
      std::printf("    %s + %s = %.3f\n", ingredients[i].c_str(),
                  ingredients[j].c_str(),
                  rt::PairingScore(ingredients[i], ingredients[j]));
    }
  }

  std::printf("\nTraining a word-LSTM generator...\n");
  rt::PipelineOptions options;
  options.corpus.num_recipes = 250;
  options.model = rt::ModelKind::kWordLstm;
  options.trainer.epochs = 4;
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok() || !(*pipeline)->Train().ok()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }
  rt::GenerationOptions gen;
  gen.max_new_tokens = 160;
  gen.sampling.temperature = 0.8f;
  gen.sampling.top_k = 10;
  gen.seed = 5;
  auto out = (*pipeline)->GenerateFromIngredients(ingredients, gen);
  if (!out.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const rt::Recipe& recipe = out->recipe;

  std::printf("\nGENERATED RECIPE: %s\n",
              recipe.title.empty() ? "(untitled)" : recipe.title.c_str());
  for (const auto& line : recipe.ingredients) {
    std::printf("  - %s (~%.0f g)\n", line.Render().c_str(),
                rt::ApproximateGrams(line));
  }

  const rt::NutritionProfile n = rt::RecipeNutrition(recipe);
  std::printf("\nESTIMATED NUTRITION (whole recipe)\n");
  std::printf("  calories  %8.0f kcal\n", n.calories_kcal);
  std::printf("  protein   %8.1f g\n", n.protein_g);
  std::printf("  fat       %8.1f g\n", n.fat_g);
  std::printf("  carbs     %8.1f g\n", n.carbs_g);
  std::printf("\nFLAVOR PAIRING\n");
  std::printf("  mean pairwise pairing score: %.3f\n",
              rt::MeanPairingScore(recipe));
  return 0;
}
