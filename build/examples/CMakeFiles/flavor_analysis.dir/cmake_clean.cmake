file(REMOVE_RECURSE
  "CMakeFiles/flavor_analysis.dir/flavor_analysis.cpp.o"
  "CMakeFiles/flavor_analysis.dir/flavor_analysis.cpp.o.d"
  "flavor_analysis"
  "flavor_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flavor_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
