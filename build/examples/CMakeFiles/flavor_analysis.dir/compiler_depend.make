# Empty compiler generated dependencies file for flavor_analysis.
# This may be replaced when dependencies are built.
