file(REMOVE_RECURSE
  "CMakeFiles/web_app.dir/web_app.cpp.o"
  "CMakeFiles/web_app.dir/web_app.cpp.o.d"
  "web_app"
  "web_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
