# Empty dependencies file for web_app.
# This may be replaced when dependencies are built.
