# Empty compiler generated dependencies file for fig2_preprocessing.
# This may be replaced when dependencies are built.
