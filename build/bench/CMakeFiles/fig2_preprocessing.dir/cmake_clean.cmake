file(REMOVE_RECURSE
  "CMakeFiles/fig2_preprocessing.dir/fig2_preprocessing.cc.o"
  "CMakeFiles/fig2_preprocessing.dir/fig2_preprocessing.cc.o.d"
  "fig2_preprocessing"
  "fig2_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
