file(REMOVE_RECURSE
  "CMakeFiles/fig_training_time.dir/fig_training_time.cc.o"
  "CMakeFiles/fig_training_time.dir/fig_training_time.cc.o.d"
  "fig_training_time"
  "fig_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
