# Empty dependencies file for fig_training_time.
# This may be replaced when dependencies are built.
