file(REMOVE_RECURSE
  "librt_bench_util.a"
)
