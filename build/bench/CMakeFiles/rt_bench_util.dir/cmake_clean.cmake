file(REMOVE_RECURSE
  "CMakeFiles/rt_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/rt_bench_util.dir/bench_util.cc.o.d"
  "librt_bench_util.a"
  "librt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
