# Empty dependencies file for rt_bench_util.
# This may be replaced when dependencies are built.
