file(REMOVE_RECURSE
  "CMakeFiles/table1_bleu.dir/table1_bleu.cc.o"
  "CMakeFiles/table1_bleu.dir/table1_bleu.cc.o.d"
  "table1_bleu"
  "table1_bleu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bleu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
