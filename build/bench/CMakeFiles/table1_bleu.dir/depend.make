# Empty dependencies file for table1_bleu.
# This may be replaced when dependencies are built.
