file(REMOVE_RECURSE
  "CMakeFiles/ablation_fraction_tokens.dir/ablation_fraction_tokens.cc.o"
  "CMakeFiles/ablation_fraction_tokens.dir/ablation_fraction_tokens.cc.o.d"
  "ablation_fraction_tokens"
  "ablation_fraction_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fraction_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
