# Empty compiler generated dependencies file for ablation_fraction_tokens.
# This may be replaced when dependencies are built.
