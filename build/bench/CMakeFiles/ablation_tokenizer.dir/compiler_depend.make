# Empty compiler generated dependencies file for ablation_tokenizer.
# This may be replaced when dependencies are built.
