file(REMOVE_RECURSE
  "CMakeFiles/ablation_tokenizer.dir/ablation_tokenizer.cc.o"
  "CMakeFiles/ablation_tokenizer.dir/ablation_tokenizer.cc.o.d"
  "ablation_tokenizer"
  "ablation_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
