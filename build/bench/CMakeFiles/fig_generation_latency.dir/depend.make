# Empty dependencies file for fig_generation_latency.
# This may be replaced when dependencies are built.
