
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_generation_latency.cc" "bench/CMakeFiles/fig_generation_latency.dir/fig_generation_latency.cc.o" "gcc" "bench/CMakeFiles/fig_generation_latency.dir/fig_generation_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rt_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/rt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/rt_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
