file(REMOVE_RECURSE
  "CMakeFiles/fig_generation_latency.dir/fig_generation_latency.cc.o"
  "CMakeFiles/fig_generation_latency.dir/fig_generation_latency.cc.o.d"
  "fig_generation_latency"
  "fig_generation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_generation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
