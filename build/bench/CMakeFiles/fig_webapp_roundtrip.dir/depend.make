# Empty dependencies file for fig_webapp_roundtrip.
# This may be replaced when dependencies are built.
