file(REMOVE_RECURSE
  "CMakeFiles/fig_webapp_roundtrip.dir/fig_webapp_roundtrip.cc.o"
  "CMakeFiles/fig_webapp_roundtrip.dir/fig_webapp_roundtrip.cc.o.d"
  "fig_webapp_roundtrip"
  "fig_webapp_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_webapp_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
