
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serve/http_robustness_test.cc" "tests/CMakeFiles/serve_test.dir/serve/http_robustness_test.cc.o" "gcc" "tests/CMakeFiles/serve_test.dir/serve/http_robustness_test.cc.o.d"
  "/root/repo/tests/serve/http_test.cc" "tests/CMakeFiles/serve_test.dir/serve/http_test.cc.o" "gcc" "tests/CMakeFiles/serve_test.dir/serve/http_test.cc.o.d"
  "/root/repo/tests/serve/json_test.cc" "tests/CMakeFiles/serve_test.dir/serve/json_test.cc.o" "gcc" "tests/CMakeFiles/serve_test.dir/serve/json_test.cc.o.d"
  "/root/repo/tests/serve/metrics_endpoint_test.cc" "tests/CMakeFiles/serve_test.dir/serve/metrics_endpoint_test.cc.o" "gcc" "tests/CMakeFiles/serve_test.dir/serve/metrics_endpoint_test.cc.o.d"
  "/root/repo/tests/serve/services_test.cc" "tests/CMakeFiles/serve_test.dir/serve/services_test.cc.o" "gcc" "tests/CMakeFiles/serve_test.dir/serve/services_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serve/CMakeFiles/rt_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
