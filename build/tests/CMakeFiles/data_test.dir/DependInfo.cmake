
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/catalog_test.cc" "tests/CMakeFiles/data_test.dir/data/catalog_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/catalog_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/data_test.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/flavor_test.cc" "tests/CMakeFiles/data_test.dir/data/flavor_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/flavor_test.cc.o.d"
  "/root/repo/tests/data/generator_property_test.cc" "tests/CMakeFiles/data_test.dir/data/generator_property_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/generator_property_test.cc.o.d"
  "/root/repo/tests/data/generator_test.cc" "tests/CMakeFiles/data_test.dir/data/generator_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/generator_test.cc.o.d"
  "/root/repo/tests/data/preprocess_property_test.cc" "tests/CMakeFiles/data_test.dir/data/preprocess_property_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/preprocess_property_test.cc.o.d"
  "/root/repo/tests/data/preprocess_test.cc" "tests/CMakeFiles/data_test.dir/data/preprocess_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/preprocess_test.cc.o.d"
  "/root/repo/tests/data/recipe_io_test.cc" "tests/CMakeFiles/data_test.dir/data/recipe_io_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/recipe_io_test.cc.o.d"
  "/root/repo/tests/data/recipe_test.cc" "tests/CMakeFiles/data_test.dir/data/recipe_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/recipe_test.cc.o.d"
  "/root/repo/tests/data/window_test.cc" "tests/CMakeFiles/data_test.dir/data/window_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
