
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/gradcheck_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor/gradcheck_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor/gradcheck_test.cc.o.d"
  "/root/repo/tests/tensor/ops_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor/ops_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor/ops_test.cc.o.d"
  "/root/repo/tests/tensor/stability_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor/stability_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor/stability_test.cc.o.d"
  "/root/repo/tests/tensor/tape_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor/tape_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor/tape_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor/tensor_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
