
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/bleu_property_test.cc" "tests/CMakeFiles/eval_test.dir/eval/bleu_property_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/bleu_property_test.cc.o.d"
  "/root/repo/tests/eval/bleu_test.cc" "tests/CMakeFiles/eval_test.dir/eval/bleu_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/bleu_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/eval_test.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/rouge_test.cc" "tests/CMakeFiles/eval_test.dir/eval/rouge_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/rouge_test.cc.o.d"
  "/root/repo/tests/eval/validity_test.cc" "tests/CMakeFiles/eval_test.dir/eval/validity_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/validity_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
