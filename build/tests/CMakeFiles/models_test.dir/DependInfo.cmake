
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models/beam_search_test.cc" "tests/CMakeFiles/models_test.dir/models/beam_search_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/beam_search_test.cc.o.d"
  "/root/repo/tests/models/early_stop_test.cc" "tests/CMakeFiles/models_test.dir/models/early_stop_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/early_stop_test.cc.o.d"
  "/root/repo/tests/models/models_test.cc" "tests/CMakeFiles/models_test.dir/models/models_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/models_test.cc.o.d"
  "/root/repo/tests/models/sampler_test.cc" "tests/CMakeFiles/models_test.dir/models/sampler_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/sampler_test.cc.o.d"
  "/root/repo/tests/models/trainer_test.cc" "tests/CMakeFiles/models_test.dir/models/trainer_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/rt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
