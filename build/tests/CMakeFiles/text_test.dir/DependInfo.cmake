
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/bpe_serialization_test.cc" "tests/CMakeFiles/text_test.dir/text/bpe_serialization_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/bpe_serialization_test.cc.o.d"
  "/root/repo/tests/text/special_tokens_test.cc" "tests/CMakeFiles/text_test.dir/text/special_tokens_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/special_tokens_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_fuzz_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenizer_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenizer_fuzz_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_property_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenizer_property_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenizer_property_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o.d"
  "/root/repo/tests/text/vocab_test.cc" "tests/CMakeFiles/text_test.dir/text/vocab_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/vocab_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
