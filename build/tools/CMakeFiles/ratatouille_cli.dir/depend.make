# Empty dependencies file for ratatouille_cli.
# This may be replaced when dependencies are built.
