file(REMOVE_RECURSE
  "CMakeFiles/ratatouille_cli.dir/ratatouille_cli.cc.o"
  "CMakeFiles/ratatouille_cli.dir/ratatouille_cli.cc.o.d"
  "ratatouille_cli"
  "ratatouille_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratatouille_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
