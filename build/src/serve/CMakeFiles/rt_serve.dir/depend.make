# Empty dependencies file for rt_serve.
# This may be replaced when dependencies are built.
