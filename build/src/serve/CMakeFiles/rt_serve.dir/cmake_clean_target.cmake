file(REMOVE_RECURSE
  "librt_serve.a"
)
