file(REMOVE_RECURSE
  "CMakeFiles/rt_serve.dir/backend_service.cc.o"
  "CMakeFiles/rt_serve.dir/backend_service.cc.o.d"
  "CMakeFiles/rt_serve.dir/frontend_service.cc.o"
  "CMakeFiles/rt_serve.dir/frontend_service.cc.o.d"
  "CMakeFiles/rt_serve.dir/http.cc.o"
  "CMakeFiles/rt_serve.dir/http.cc.o.d"
  "librt_serve.a"
  "librt_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
