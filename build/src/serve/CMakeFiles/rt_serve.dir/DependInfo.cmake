
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/backend_service.cc" "src/serve/CMakeFiles/rt_serve.dir/backend_service.cc.o" "gcc" "src/serve/CMakeFiles/rt_serve.dir/backend_service.cc.o.d"
  "/root/repo/src/serve/frontend_service.cc" "src/serve/CMakeFiles/rt_serve.dir/frontend_service.cc.o" "gcc" "src/serve/CMakeFiles/rt_serve.dir/frontend_service.cc.o.d"
  "/root/repo/src/serve/http.cc" "src/serve/CMakeFiles/rt_serve.dir/http.cc.o" "gcc" "src/serve/CMakeFiles/rt_serve.dir/http.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
