file(REMOVE_RECURSE
  "CMakeFiles/rt_tensor.dir/ops.cc.o"
  "CMakeFiles/rt_tensor.dir/ops.cc.o.d"
  "CMakeFiles/rt_tensor.dir/tape.cc.o"
  "CMakeFiles/rt_tensor.dir/tape.cc.o.d"
  "CMakeFiles/rt_tensor.dir/tensor.cc.o"
  "CMakeFiles/rt_tensor.dir/tensor.cc.o.d"
  "librt_tensor.a"
  "librt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
