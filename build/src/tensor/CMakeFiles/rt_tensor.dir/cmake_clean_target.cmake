file(REMOVE_RECURSE
  "librt_tensor.a"
)
