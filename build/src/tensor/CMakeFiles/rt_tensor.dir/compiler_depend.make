# Empty compiler generated dependencies file for rt_tensor.
# This may be replaced when dependencies are built.
