
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/bleu.cc" "src/eval/CMakeFiles/rt_eval.dir/bleu.cc.o" "gcc" "src/eval/CMakeFiles/rt_eval.dir/bleu.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/rt_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/rt_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/rouge.cc" "src/eval/CMakeFiles/rt_eval.dir/rouge.cc.o" "gcc" "src/eval/CMakeFiles/rt_eval.dir/rouge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
