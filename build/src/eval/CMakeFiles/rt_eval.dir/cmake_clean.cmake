file(REMOVE_RECURSE
  "CMakeFiles/rt_eval.dir/bleu.cc.o"
  "CMakeFiles/rt_eval.dir/bleu.cc.o.d"
  "CMakeFiles/rt_eval.dir/metrics.cc.o"
  "CMakeFiles/rt_eval.dir/metrics.cc.o.d"
  "CMakeFiles/rt_eval.dir/rouge.cc.o"
  "CMakeFiles/rt_eval.dir/rouge.cc.o.d"
  "librt_eval.a"
  "librt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
