file(REMOVE_RECURSE
  "librt_eval.a"
)
