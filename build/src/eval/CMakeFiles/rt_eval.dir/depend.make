# Empty dependencies file for rt_eval.
# This may be replaced when dependencies are built.
