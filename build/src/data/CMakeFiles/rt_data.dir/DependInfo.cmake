
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/catalog.cc" "src/data/CMakeFiles/rt_data.dir/catalog.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/catalog.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/rt_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/flavor.cc" "src/data/CMakeFiles/rt_data.dir/flavor.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/flavor.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/rt_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/generator.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/data/CMakeFiles/rt_data.dir/preprocess.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/preprocess.cc.o.d"
  "/root/repo/src/data/recipe.cc" "src/data/CMakeFiles/rt_data.dir/recipe.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/recipe.cc.o.d"
  "/root/repo/src/data/recipe_io.cc" "src/data/CMakeFiles/rt_data.dir/recipe_io.cc.o" "gcc" "src/data/CMakeFiles/rt_data.dir/recipe_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
