file(REMOVE_RECURSE
  "CMakeFiles/rt_data.dir/catalog.cc.o"
  "CMakeFiles/rt_data.dir/catalog.cc.o.d"
  "CMakeFiles/rt_data.dir/dataset.cc.o"
  "CMakeFiles/rt_data.dir/dataset.cc.o.d"
  "CMakeFiles/rt_data.dir/flavor.cc.o"
  "CMakeFiles/rt_data.dir/flavor.cc.o.d"
  "CMakeFiles/rt_data.dir/generator.cc.o"
  "CMakeFiles/rt_data.dir/generator.cc.o.d"
  "CMakeFiles/rt_data.dir/preprocess.cc.o"
  "CMakeFiles/rt_data.dir/preprocess.cc.o.d"
  "CMakeFiles/rt_data.dir/recipe.cc.o"
  "CMakeFiles/rt_data.dir/recipe.cc.o.d"
  "CMakeFiles/rt_data.dir/recipe_io.cc.o"
  "CMakeFiles/rt_data.dir/recipe_io.cc.o.d"
  "librt_data.a"
  "librt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
