file(REMOVE_RECURSE
  "librt_data.a"
)
