# Empty compiler generated dependencies file for rt_data.
# This may be replaced when dependencies are built.
