# Empty compiler generated dependencies file for rt_util.
# This may be replaced when dependencies are built.
