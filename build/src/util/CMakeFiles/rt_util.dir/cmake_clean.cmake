file(REMOVE_RECURSE
  "CMakeFiles/rt_util.dir/flags.cc.o"
  "CMakeFiles/rt_util.dir/flags.cc.o.d"
  "CMakeFiles/rt_util.dir/json.cc.o"
  "CMakeFiles/rt_util.dir/json.cc.o.d"
  "CMakeFiles/rt_util.dir/logging.cc.o"
  "CMakeFiles/rt_util.dir/logging.cc.o.d"
  "CMakeFiles/rt_util.dir/rng.cc.o"
  "CMakeFiles/rt_util.dir/rng.cc.o.d"
  "CMakeFiles/rt_util.dir/status.cc.o"
  "CMakeFiles/rt_util.dir/status.cc.o.d"
  "CMakeFiles/rt_util.dir/strings.cc.o"
  "CMakeFiles/rt_util.dir/strings.cc.o.d"
  "CMakeFiles/rt_util.dir/table.cc.o"
  "CMakeFiles/rt_util.dir/table.cc.o.d"
  "librt_util.a"
  "librt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
