file(REMOVE_RECURSE
  "librt_util.a"
)
