# Empty dependencies file for rt_models.
# This may be replaced when dependencies are built.
