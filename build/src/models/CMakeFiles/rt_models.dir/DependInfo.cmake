
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/gpt2_model.cc" "src/models/CMakeFiles/rt_models.dir/gpt2_model.cc.o" "gcc" "src/models/CMakeFiles/rt_models.dir/gpt2_model.cc.o.d"
  "/root/repo/src/models/lstm_model.cc" "src/models/CMakeFiles/rt_models.dir/lstm_model.cc.o" "gcc" "src/models/CMakeFiles/rt_models.dir/lstm_model.cc.o.d"
  "/root/repo/src/models/sampler.cc" "src/models/CMakeFiles/rt_models.dir/sampler.cc.o" "gcc" "src/models/CMakeFiles/rt_models.dir/sampler.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/rt_models.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/rt_models.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/rt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rt_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
