file(REMOVE_RECURSE
  "librt_models.a"
)
