file(REMOVE_RECURSE
  "CMakeFiles/rt_models.dir/gpt2_model.cc.o"
  "CMakeFiles/rt_models.dir/gpt2_model.cc.o.d"
  "CMakeFiles/rt_models.dir/lstm_model.cc.o"
  "CMakeFiles/rt_models.dir/lstm_model.cc.o.d"
  "CMakeFiles/rt_models.dir/sampler.cc.o"
  "CMakeFiles/rt_models.dir/sampler.cc.o.d"
  "CMakeFiles/rt_models.dir/trainer.cc.o"
  "CMakeFiles/rt_models.dir/trainer.cc.o.d"
  "librt_models.a"
  "librt_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
