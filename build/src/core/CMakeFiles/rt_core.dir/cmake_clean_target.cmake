file(REMOVE_RECURSE
  "librt_core.a"
)
