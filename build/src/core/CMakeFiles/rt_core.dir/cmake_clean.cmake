file(REMOVE_RECURSE
  "CMakeFiles/rt_core.dir/pipeline.cc.o"
  "CMakeFiles/rt_core.dir/pipeline.cc.o.d"
  "librt_core.a"
  "librt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
