file(REMOVE_RECURSE
  "CMakeFiles/rt_sim.dir/device_model.cc.o"
  "CMakeFiles/rt_sim.dir/device_model.cc.o.d"
  "librt_sim.a"
  "librt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
