file(REMOVE_RECURSE
  "librt_sim.a"
)
