# Empty dependencies file for rt_text.
# This may be replaced when dependencies are built.
