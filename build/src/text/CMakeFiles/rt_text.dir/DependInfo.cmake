
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bpe_tokenizer.cc" "src/text/CMakeFiles/rt_text.dir/bpe_tokenizer.cc.o" "gcc" "src/text/CMakeFiles/rt_text.dir/bpe_tokenizer.cc.o.d"
  "/root/repo/src/text/char_tokenizer.cc" "src/text/CMakeFiles/rt_text.dir/char_tokenizer.cc.o" "gcc" "src/text/CMakeFiles/rt_text.dir/char_tokenizer.cc.o.d"
  "/root/repo/src/text/special_tokens.cc" "src/text/CMakeFiles/rt_text.dir/special_tokens.cc.o" "gcc" "src/text/CMakeFiles/rt_text.dir/special_tokens.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/rt_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/rt_text.dir/vocab.cc.o.d"
  "/root/repo/src/text/word_tokenizer.cc" "src/text/CMakeFiles/rt_text.dir/word_tokenizer.cc.o" "gcc" "src/text/CMakeFiles/rt_text.dir/word_tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
