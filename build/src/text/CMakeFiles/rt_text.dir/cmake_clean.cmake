file(REMOVE_RECURSE
  "CMakeFiles/rt_text.dir/bpe_tokenizer.cc.o"
  "CMakeFiles/rt_text.dir/bpe_tokenizer.cc.o.d"
  "CMakeFiles/rt_text.dir/char_tokenizer.cc.o"
  "CMakeFiles/rt_text.dir/char_tokenizer.cc.o.d"
  "CMakeFiles/rt_text.dir/special_tokens.cc.o"
  "CMakeFiles/rt_text.dir/special_tokens.cc.o.d"
  "CMakeFiles/rt_text.dir/vocab.cc.o"
  "CMakeFiles/rt_text.dir/vocab.cc.o.d"
  "CMakeFiles/rt_text.dir/word_tokenizer.cc.o"
  "CMakeFiles/rt_text.dir/word_tokenizer.cc.o.d"
  "librt_text.a"
  "librt_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
