file(REMOVE_RECURSE
  "librt_text.a"
)
