file(REMOVE_RECURSE
  "librt_nn.a"
)
