# Empty compiler generated dependencies file for rt_nn.
# This may be replaced when dependencies are built.
