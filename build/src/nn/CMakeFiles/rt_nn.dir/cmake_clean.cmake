file(REMOVE_RECURSE
  "CMakeFiles/rt_nn.dir/checkpoint.cc.o"
  "CMakeFiles/rt_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/rt_nn.dir/layers.cc.o"
  "CMakeFiles/rt_nn.dir/layers.cc.o.d"
  "CMakeFiles/rt_nn.dir/module.cc.o"
  "CMakeFiles/rt_nn.dir/module.cc.o.d"
  "CMakeFiles/rt_nn.dir/optimizer.cc.o"
  "CMakeFiles/rt_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/rt_nn.dir/schedule.cc.o"
  "CMakeFiles/rt_nn.dir/schedule.cc.o.d"
  "librt_nn.a"
  "librt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
